package netlist

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/process"
)

// inv builds a canonical minimum inverter cell.
func inv(t *testing.T) *Circuit {
	t.Helper()
	c := New("inv")
	c.DeclarePort("a")
	c.DeclarePort("y")
	c.NMOS("mn", "a", "vss", "y", 2, 0.75)
	c.PMOS("mp", "a", "vdd", "y", 4, 0.75)
	if err := c.Validate(); err != nil {
		t.Fatalf("inv invalid: %v", err)
	}
	return c
}

func TestNodeInterning(t *testing.T) {
	c := New("t")
	a := c.Node("a")
	if c.Node("a") != a {
		t.Error("same name must return same node")
	}
	if c.Node("b") == a {
		t.Error("different names must differ")
	}
	if c.FindNode("a") != a {
		t.Error("FindNode mismatch")
	}
	if c.FindNode("zz") != InvalidNode {
		t.Error("FindNode of unknown should be InvalidNode")
	}
}

func TestSupplyAliases(t *testing.T) {
	c := New("t")
	vss := c.Node("vss")
	for _, alias := range []string{"GND", "gnd", "0", "VSS"} {
		if c.Node(alias) != vss {
			t.Errorf("%q should alias vss", alias)
		}
	}
	vdd := c.Node("VDD")
	if c.Node("vcc") != vdd {
		t.Error("vcc should alias vdd")
	}
	if !c.IsVdd(vdd) || !c.IsVss(vss) || !c.IsSupply(vdd) || !c.IsSupply(vss) {
		t.Error("supply predicates wrong")
	}
	if c.IsSupply(c.Node("sig")) {
		t.Error("signal flagged as supply")
	}
}

func TestPortsKeepOrder(t *testing.T) {
	c := New("t")
	c.DeclarePort("b")
	c.DeclarePort("a")
	c.DeclarePort("b") // duplicate: no-op
	if len(c.Ports) != 2 || c.NodeName(c.Ports[0]) != "b" || c.NodeName(c.Ports[1]) != "a" {
		t.Errorf("ports out of order: %v", c.Ports)
	}
}

func TestDeviceQueries(t *testing.T) {
	c := inv(t)
	y := c.FindNode("y")
	a := c.FindNode("a")
	if got := len(c.DevicesOn(y)); got != 2 {
		t.Errorf("DevicesOn(y) = %d devices, want 2", got)
	}
	if got := len(c.GatesOn(a)); got != 2 {
		t.Errorf("GatesOn(a) = %d devices, want 2", got)
	}
	if got := len(c.DevicesOn(a)); got != 0 {
		t.Errorf("DevicesOn(a) = %d devices, want 0", got)
	}
	if w := c.TotalWidth(); w != 6 {
		t.Errorf("TotalWidth = %g, want 6", w)
	}
}

func TestStats(t *testing.T) {
	c := inv(t)
	s := c.Stats()
	if s.Devices != 2 || s.NMOS != 1 || s.PMOS != 1 || s.TotalW != 6 {
		t.Errorf("stats = %+v", s)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	c := New("bad")
	c.NMOS("m1", "a", "vss", "y", 2, 0.75)
	c.NMOS("m1", "b", "vss", "y", 2, 0.75) // duplicate name
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate-name error, got %v", err)
	}

	c2 := New("bad2")
	c2.NMOS("m1", "a", "vss", "y", 0, 0.75) // zero width
	if err := c2.Validate(); err == nil {
		t.Error("want geometry error")
	}

	c3 := New("bad3")
	d := c3.NMOS("m1", "a", "vss", "y", 2, 0.75)
	d.ExtraL = -1
	if err := c3.Validate(); err == nil {
		t.Error("want ExtraL error")
	}
}

func TestFlattenTwoLevels(t *testing.T) {
	lib := NewLibrary()
	lib.Add(inv(t))

	buf := New("buf")
	buf.DeclarePort("in")
	buf.DeclarePort("out")
	buf.AddInstance("x1", "inv", "in", "mid")
	buf.AddInstance("x2", "inv", "mid", "out")
	lib.Add(buf)

	top := New("chip")
	top.DeclarePort("i")
	top.DeclarePort("o")
	top.AddInstance("xb", "buf", "i", "o")
	lib.Add(top)

	flat, err := lib.Flatten("chip")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(flat.Devices); got != 4 {
		t.Fatalf("flat devices = %d, want 4", got)
	}
	// The internal node of the buffer must be hierarchical.
	if flat.FindNode("xb/mid") == InvalidNode {
		t.Error("missing hierarchical node xb/mid")
	}
	// Boundary nodes must map through to top-level names, not copies.
	if flat.FindNode("i") == InvalidNode || flat.FindNode("o") == InvalidNode {
		t.Error("top ports lost in flattening")
	}
	// Supplies are global — exactly one vdd.
	if flat.FindNode("xb/x1/vdd") != InvalidNode {
		t.Error("supply was incorrectly prefixed")
	}
	// Device names carry the path.
	names := map[string]bool{}
	for _, d := range flat.Devices {
		names[d.Name] = true
	}
	for _, want := range []string{"xb/x1/mn", "xb/x1/mp", "xb/x2/mn", "xb/x2/mp"} {
		if !names[want] {
			t.Errorf("missing flattened device %s (have %v)", want, names)
		}
	}
	if err := flat.Validate(); err != nil {
		t.Errorf("flat netlist invalid: %v", err)
	}
}

func TestFlattenPortConnectivity(t *testing.T) {
	// The classic flattening bug: an instance output feeding another
	// instance input must become one node.
	lib := NewLibrary()
	lib.Add(inv(t))
	top := New("chain")
	top.DeclarePort("in")
	top.DeclarePort("out")
	top.AddInstance("u1", "inv", "in", "n1")
	top.AddInstance("u2", "inv", "n1", "out")
	lib.Add(top)

	flat, err := lib.Flatten("chain")
	if err != nil {
		t.Fatal(err)
	}
	n1 := flat.FindNode("n1")
	if n1 == InvalidNode {
		t.Fatal("n1 missing")
	}
	// n1 must have both u1's drains (2 devices) and u2's gates (2).
	if got := len(flat.DevicesOn(n1)); got != 2 {
		t.Errorf("DevicesOn(n1) = %d, want 2", got)
	}
	if got := len(flat.GatesOn(n1)); got != 2 {
		t.Errorf("GatesOn(n1) = %d, want 2", got)
	}
}

func TestFlattenErrors(t *testing.T) {
	lib := NewLibrary()
	if _, err := lib.Flatten("nope"); err == nil {
		t.Error("flatten of unknown cell should fail")
	}

	// Unknown child.
	a := New("a")
	a.AddInstance("x", "missing", "n")
	lib.Add(a)
	if _, err := lib.Flatten("a"); err == nil || !strings.Contains(err.Error(), "unknown cell") {
		t.Errorf("want unknown-cell error, got %v", err)
	}

	// Port arity mismatch.
	lib2 := NewLibrary()
	i := New("leaf")
	i.DeclarePort("p")
	i.DeclarePort("q")
	lib2.Add(i)
	b := New("b")
	b.AddInstance("x", "leaf", "n") // 1 conn, 2 ports
	lib2.Add(b)
	if _, err := lib2.Flatten("b"); err == nil || !strings.Contains(err.Error(), "ports") {
		t.Errorf("want arity error, got %v", err)
	}

	// Recursion.
	lib3 := NewLibrary()
	r := New("r")
	r.DeclarePort("p")
	r.AddInstance("x", "r", "p")
	lib3.Add(r)
	if _, err := lib3.Flatten("r"); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("want recursion error, got %v", err)
	}
}

func TestFlattenMergesCapsAndAttrs(t *testing.T) {
	lib := NewLibrary()
	leaf := New("leaf")
	leaf.DeclarePort("p")
	leaf.AddCap("p", 3)
	leaf.SetAttr(leaf.Node("p"), "clock", "phi1")
	leaf.NMOS("m", "p", "vss", "q", 2, 0.75)
	lib.Add(leaf)

	top := New("t")
	top.DeclarePort("sig")
	top.AddCap("sig", 2)
	top.AddInstance("u", "leaf", "sig")
	lib.Add(top)

	flat, err := lib.Flatten("t")
	if err != nil {
		t.Fatal(err)
	}
	sig := flat.FindNode("sig")
	if flat.Nodes[sig].CapFF != 5 {
		t.Errorf("cap not merged: %g, want 5", flat.Nodes[sig].CapFF)
	}
	if flat.Nodes[sig].Attrs["clock"] != "phi1" {
		t.Error("attribute not propagated through flattening")
	}
}

func TestVtClassPreservedThroughFlatten(t *testing.T) {
	lib := NewLibrary()
	leaf := New("leaf")
	leaf.DeclarePort("p")
	d := leaf.NMOS("m", "p", "vss", "q", 2, 0.75)
	d.Vt = process.LowVt
	d.ExtraL = 0.045
	lib.Add(leaf)
	top := New("t")
	top.AddInstance("u", "leaf", "n")
	lib.Add(top)
	flat, err := lib.Flatten("t")
	if err != nil {
		t.Fatal(err)
	}
	if flat.Devices[0].Vt != process.LowVt || flat.Devices[0].ExtraL != 0.045 {
		t.Errorf("device params lost: %+v", flat.Devices[0])
	}
}

// Property: flattening preserves total device count for arbitrary
// instance trees (each level instantiates the previous k times).
func TestFlattenPreservesDeviceCountProperty(t *testing.T) {
	f := func(fanouts []uint8) bool {
		if len(fanouts) > 3 {
			fanouts = fanouts[:3]
		}
		lib := NewLibrary()
		leaf := New("leaf")
		leaf.DeclarePort("p")
		leaf.NMOS("m1", "p", "vss", "x", 2, 0.75)
		leaf.PMOS("m2", "p", "vdd", "x", 4, 0.75)
		lib.Add(leaf)
		prev := "leaf"
		want := 2
		for lvl, f := range fanouts {
			k := int(f%3) + 1
			c := New("lvl" + string(rune('a'+lvl)))
			c.DeclarePort("p")
			for i := 0; i < k; i++ {
				c.AddInstance("u"+string(rune('0'+i)), prev, "p")
			}
			lib.Add(c)
			prev = c.Name
			want *= k
		}
		flat, err := lib.Flatten(prev)
		if err != nil {
			return false
		}
		return len(flat.Devices) == want && flat.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
