package netlist

import (
	"sort"
	"testing"
)

// sigChain builds a 3-stage inverter chain with configurable node names
// and device insertion order, for invariance tests.
func sigChain(names [4]string, reversed bool, w2 float64) *Circuit {
	c := New("chain")
	type dev struct {
		name             string
		nmos             bool
		gate, src, drain string
		w                float64
	}
	devs := []dev{
		{"mn1", true, names[0], "vss", names[1], 2},
		{"mp1", false, names[0], "vdd", names[1], 4},
		{"mn2", true, names[1], "vss", names[2], w2},
		{"mp2", false, names[1], "vdd", names[2], 2 * w2},
		{"mn3", true, names[2], "vss", names[3], 2},
		{"mp3", false, names[2], "vdd", names[3], 4},
	}
	if reversed {
		for i, j := 0, len(devs)-1; i < j; i, j = i+1, j-1 {
			devs[i], devs[j] = devs[j], devs[i]
		}
	}
	c.DeclarePort(names[0])
	c.DeclarePort(names[3])
	for _, d := range devs {
		if d.nmos {
			c.NMOS(d.name, d.gate, d.src, d.drain, d.w, 0.75)
		} else {
			c.PMOS(d.name, d.gate, d.src, d.drain, d.w, 0.75)
		}
	}
	return c
}

// TestSignaturesRenameInvariant: renaming nodes and reversing device
// order maps corresponding subjects to identical signatures and IDs.
func TestSignaturesRenameInvariant(t *testing.T) {
	a := sigChain([4]string{"in", "n1", "n2", "out"}, false, 2)
	b := sigChain([4]string{"x", "alpha", "beta", "y"}, true, 2)
	sa, sb := ComputeSignatures(a), ComputeSignatures(b)
	pairs := [][2]string{{"in", "x"}, {"n1", "alpha"}, {"n2", "beta"}, {"out", "y"}}
	for _, p := range pairs {
		if sa.SubjectSig(p[0]) != sb.SubjectSig(p[1]) {
			t.Errorf("node %s vs %s: signatures differ", p[0], p[1])
		}
		ia := sa.FindingID("check", "edge-rate", p[0])
		ib := sb.FindingID("check", "edge-rate", p[1])
		if ia != ib {
			t.Errorf("finding IDs differ under rename: %s vs %s", ia, ib)
		}
	}
	// Device subjects too: mn2 keeps its signature across reordering.
	if sa.SubjectSig("mn2") != sb.SubjectSig("mn2") {
		t.Error("device signature changed under reorder")
	}
}

// TestSignaturesSizingSensitive: a W change moves the signatures of the
// nodes that can see it.
func TestSignaturesSizingSensitive(t *testing.T) {
	a := ComputeSignatures(sigChain([4]string{"in", "n1", "n2", "out"}, false, 2))
	b := ComputeSignatures(sigChain([4]string{"in", "n1", "n2", "out"}, false, 6))
	if a.SubjectSig("n2") == b.SubjectSig("n2") {
		t.Error("driven-node signature unchanged by W change")
	}
	if a.FindingID("check", "beta-ratio", "n2") == b.FindingID("check", "beta-ratio", "n2") {
		t.Error("finding ID unchanged by W change")
	}
}

// TestSignaturesDistinguishSubjects: different subjects of the same
// check get different IDs, and device subjects are domain-separated
// from nodes.
func TestSignaturesDistinguishSubjects(t *testing.T) {
	s := ComputeSignatures(sigChain([4]string{"in", "n1", "n2", "out"}, false, 2))
	ids := map[string]bool{}
	for _, subj := range []string{"in", "n1", "n2", "out", "mn1", "mp1", "no-such-name"} {
		id := s.FindingID("check", "coupling", subj)
		if ids[id] {
			t.Errorf("duplicate ID %s for subject %s", id, subj)
		}
		ids[id] = true
	}
	if s.FindingID("check", "coupling", "n1") == s.FindingID("check", "edge-rate", "n1") {
		t.Error("check name not part of the ID")
	}
	if s.FindingID("check", "coupling", "n1") == s.FindingID("lint", "coupling", "n1") {
		t.Error("source not part of the ID")
	}
}

// TestDisambiguateIDs suffixes repeats deterministically.
func TestDisambiguateIDs(t *testing.T) {
	ids := []string{"a", "b", "a", "a", "b"}
	DisambiguateIDs(ids)
	want := []string{"a", "b", "a#2", "a#3", "b#2"}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

// TestFingerprintUnchangedByRefactor: the refine extraction must not
// have moved the digest — pin the fingerprint's self-consistency and
// its invariance on the shared fixture.
func TestFingerprintUnchangedByRefactor(t *testing.T) {
	a := sigChain([4]string{"in", "n1", "n2", "out"}, false, 2)
	b := sigChain([4]string{"x", "alpha", "beta", "y"}, true, 2)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint not rename/reorder invariant")
	}
	// Repeat calls agree (refine results are copied before sorting).
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint unstable across calls")
	}
	sigs := ComputeSignatures(a)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("computing signatures perturbed the fingerprint")
	}
	_ = sigs
	// Node multisets agree between the renamed twins.
	ms := func(s *Signatures) []uint64 {
		out := append([]uint64(nil), s.node...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	ma, mb := ms(ComputeSignatures(a)), ms(ComputeSignatures(b))
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("node label multisets diverge at %d", i)
		}
	}
}
