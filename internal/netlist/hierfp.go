// Hierarchical fingerprinting: the per-cell / DAG contract that makes
// incremental verification possible.
//
// The flat Fingerprint hashes instance connections against the child
// cell's *name*, so any edit anywhere in the hierarchy (or a mere cell
// rename) moves the top-level hash and cold-misses every cache.
// This file instead gives every cell two hashes:
//
//   - Local (CellFingerprint): the cell's own devices, resistors, nodes
//     and instance *topology*, with every instance identity replaced by
//     one neutral constant. Editing a child cell — or renaming it —
//     never moves a parent's Local hash.
//   - DAG: the refinement of the cell's local structure with each
//     instance seeded by its child's DAG hash, mixed with the cell's
//     boundary (port interface) signature. Content-identical
//     hierarchies hash identically regardless of cell names or element
//     order, and a one-leaf edit moves only that leaf's DAG hash and
//     the DAG hashes on its path to the root.
//
// The verification fleet keys subcell cache entries on DAG hashes: a
// warm re-verify after a leaf edit recomputes exactly the edited cell
// plus its ancestors and replays everything else from cache.
package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// fpNeutralInst is the neutral instance seed CellFingerprint uses in
// place of child identities (an arbitrary odd 64-bit constant, distinct
// from every fpString image with overwhelming probability).
const fpNeutralInst = 0xc3a5c85c97cb3127

// hierFPVersion salts the DAG composition digest so any change to the
// composition rule invalidates previously cached hashes.
const hierFPVersion = "fcv-hierfp/v1"

// CellFingerprint computes the cell-local structural hash: like
// Fingerprint, but with every instance's identity replaced by a neutral
// constant, so only the cell's own content and its instance topology
// (count, connectivity, port positions) matter. Renaming or editing a
// child cell leaves it unchanged; for a cell with no instances it
// equals Fingerprint.
func (c *Circuit) CellFingerprint() Fingerprint {
	return c.fingerprintWith(neutralInstLabels(c))
}

// BoundarySignature hashes the cell's port interface: the refined
// structural labels of its port nodes in declaration order (the order
// instance connections bind to). Two cells with interchangeable
// interfaces share it; adding, removing, reordering or re-typing a port
// changes it.
func (c *Circuit) BoundarySignature() uint64 {
	return boundaryFold(c, c.refineLabels(neutralInstLabels(c)))
}

// neutralInstLabels returns the all-neutral instance seed vector (non-
// nil even when empty, so refineLabels takes the explicit-label path).
func neutralInstLabels(c *Circuit) []uint64 {
	labels := make([]uint64, len(c.Instances))
	for i := range labels {
		labels[i] = fpNeutralInst
	}
	return labels
}

// boundaryFold folds the refined port labels in declaration order.
func boundaryFold(c *Circuit, r refined) uint64 {
	h := fpMix(uint64(fpSeed), uint64(len(c.Ports)))
	for _, p := range c.Ports {
		h = fpMix(h, r.node[p])
	}
	return h
}

// fpFold compresses a 256-bit fingerprint into the 64-bit label space
// the refinement rounds operate in.
func fpFold(f Fingerprint) uint64 {
	return binary.LittleEndian.Uint64(f[0:8]) ^
		binary.LittleEndian.Uint64(f[8:16]) ^
		binary.LittleEndian.Uint64(f[16:24]) ^
		binary.LittleEndian.Uint64(f[24:32])
}

// CellInfo is one cell's entry in the hierarchical fingerprint DAG.
// The child-edit-invariant local hash is available on demand via
// Circuit.CellFingerprint; the DAG only needs the composed hash, so
// building it costs a single refinement per cell.
type CellInfo struct {
	Name        string
	DAG         Fingerprint // composed local structure + children DAGs + boundary
	Boundary    uint64      // port interface signature (from the composed refinement)
	Depth       int         // longest instance path below (leaf = 0)
	FlatDevices int         // device count after full flattening
	Instances   int         // direct instance count
	Children    []string    // direct child cell names, first-use order
}

// HierFP is the fingerprint DAG of a hierarchy rooted at Top: one
// CellInfo per reachable cell, in deterministic topological order
// (leaves first, Top last), so walking Order visits every cell after
// all of its children.
type HierFP struct {
	Top   string
	Order []string
	Cells map[string]*CellInfo
}

// Info returns the entry for cell name, or nil.
func (h *HierFP) Info(name string) *CellInfo { return h.Cells[name] }

// HierFPMemo caches per-cell DAG results across HierFingerprint calls.
// A cell's (DAG, Boundary) pair is a pure function of its raw structure
// and its instances' child seed labels, so the memo keys on a cheap
// single-pass digest of exactly those inputs — deliberately rename- and
// order-SENSITIVE, unlike the refinement it short-circuits: a false
// miss only costs the refinement it would have skipped, never a wrong
// value. After a one-leaf edit, a warm rebuild refines only the edited
// cell and its ancestors (whose child labels moved); every other cell
// is one buffer hash.
type HierFPMemo struct {
	mu  sync.Mutex
	m   map[[sha256.Size]byte]hierFPMemoEntry
	buf []byte
}

type hierFPMemoEntry struct {
	dag      Fingerprint
	boundary uint64
}

// NewHierFPMemo returns an empty memo, safe for concurrent use.
func NewHierFPMemo() *HierFPMemo {
	return &HierFPMemo{m: make(map[[sha256.Size]byte]hierFPMemoEntry)}
}

// hierMemoSlack bounds the memo relative to the latest build's live
// key set: pruning starts only past this multiple, so re-verifying one
// design never evicts, while a daemon's edit history (one superseded
// key per edited cell per iteration) cannot grow the memo unboundedly.
const hierMemoSlack = 8

// prune drops entries outside live once the memo has outgrown
// hierMemoSlack times it. Eviction is always safe: a pruned entry costs
// one re-refinement on next sight, never a wrong value. Concurrent
// builds can prune each other's fresh entries — also only a perf cost.
func (mm *HierFPMemo) prune(live map[[sha256.Size]byte]bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if len(mm.m) <= hierMemoSlack*len(live) {
		return
	}
	for k := range mm.m {
		if !live[k] {
			delete(mm.m, k)
		}
	}
}

// rawKey digests every input the refinement reads: node classes, port
// flags, capacitances and attributes; device kind, flavour, sizing and
// terminals; resistors; instance connections with their child seed
// labels; and the port declaration order the boundary fold consumes.
// Names of devices, instances and non-supply nodes are structurally
// irrelevant and excluded (node identity enters through indices).
func (mm *HierFPMemo) rawKey(c *Circuit, childLabels []uint64) [sha256.Size]byte {
	b := mm.buf[:0]
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u64(uint64(len(c.Nodes)))
	u64(uint64(len(c.Devices)))
	u64(uint64(len(c.Resistors)))
	u64(uint64(len(c.Instances)))
	u64(uint64(len(c.Ports)))
	for i := range c.Nodes {
		n := c.Nodes[i]
		var cls byte = 3
		switch {
		case c.IsVdd(NodeID(i)):
			cls = 1
		case c.IsVss(NodeID(i)):
			cls = 2
		}
		if n.IsPort {
			cls |= 1 << 4
		}
		b = append(b, cls)
		u64(math.Float64bits(n.CapFF))
		// The attr count keeps the encoding prefix-free: without it the
		// next node's fixed fields could parse as more length-prefixed
		// attr data, letting two different circuits share a key — and a
		// collision here is a false memo HIT returning a wrong DAG hash,
		// not a harmless miss.
		u64(uint64(len(n.Attrs)))
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				u64(uint64(len(k)))
				b = append(b, k...)
				v := n.Attrs[k]
				u64(uint64(len(v)))
				b = append(b, v...)
			}
		}
	}
	for i := range c.Devices {
		d := c.Devices[i]
		b = append(b, byte(d.Type), byte(d.Vt))
		u64(math.Float64bits(d.W))
		u64(math.Float64bits(d.L))
		u64(math.Float64bits(d.ExtraL))
		u64(uint64(d.Gate))
		u64(uint64(d.Bulk))
		u64(uint64(d.Source))
		u64(uint64(d.Drain))
	}
	for i := range c.Resistors {
		r := c.Resistors[i]
		u64(math.Float64bits(r.Ohms))
		u64(uint64(r.A))
		u64(uint64(r.B))
	}
	for i := range c.Instances {
		u64(childLabels[i])
		conns := c.Instances[i].Conns
		u64(uint64(len(conns)))
		for _, n := range conns {
			u64(uint64(n))
		}
	}
	for _, p := range c.Ports {
		u64(uint64(p))
	}
	mm.buf = b
	return sha256.Sum256(b)
}

// HierFingerprint builds the fingerprint DAG for the hierarchy rooted
// at top, resolving instance references through the library. top itself
// need not be a library member (a deck's element soup qualifies). It
// errors on references to cells the library does not define and on
// recursive hierarchies.
func (l *Library) HierFingerprint(top *Circuit) (*HierFP, error) {
	return l.HierFingerprintMemo(top, nil)
}

// HierFingerprintMemo is HierFingerprint with cross-call memoization of
// the per-cell refinement work (memo may be nil).
func (l *Library) HierFingerprintMemo(top *Circuit, memo *HierFPMemo) (*HierFP, error) {
	h := &HierFP{Top: top.Name, Cells: make(map[string]*CellInfo)}
	state := make(map[string]int) // 1 = in stack, 2 = done
	var live map[[sha256.Size]byte]bool
	if memo != nil {
		live = make(map[[sha256.Size]byte]bool)
	}
	var visit func(c *Circuit) (*CellInfo, error)
	visit = func(c *Circuit) (*CellInfo, error) {
		switch state[c.Name] {
		case 1:
			return nil, fmt.Errorf("hierfp: recursive hierarchy through cell %q", c.Name)
		case 2:
			return h.Cells[c.Name], nil
		}
		state[c.Name] = 1
		childLabels := make([]uint64, len(c.Instances))
		info := &CellInfo{
			Name:        c.Name,
			FlatDevices: len(c.Devices),
			Instances:   len(c.Instances),
		}
		seen := make(map[string]bool)
		for i, inst := range c.Instances {
			child := l.Cell(inst.Cell)
			if child == nil {
				return nil, fmt.Errorf("hierfp: cell %q: instance %s references unknown cell %q",
					c.Name, inst.Name, inst.Cell)
			}
			ci, err := visit(child)
			if err != nil {
				return nil, err
			}
			childLabels[i] = fpFold(ci.DAG)
			info.FlatDevices += ci.FlatDevices
			if ci.Depth+1 > info.Depth {
				info.Depth = ci.Depth + 1
			}
			if !seen[inst.Cell] {
				seen[inst.Cell] = true
				info.Children = append(info.Children, inst.Cell)
			}
		}
		var key [sha256.Size]byte
		var hit bool
		if memo != nil {
			memo.mu.Lock()
			key = memo.rawKey(c, childLabels)
			ent, ok := memo.m[key]
			memo.mu.Unlock()
			live[key] = true
			if ok {
				info.DAG, info.Boundary = ent.dag, ent.boundary
				hit = true
			}
		}
		if !hit {
			// A single refinement with the child DAG seeds yields both
			// the composed structure hash and the boundary signature. The
			// fold must run before digestRefined, which sorts rc in place.
			rc := c.refineLabels(childLabels)
			info.Boundary = boundaryFold(c, rc)
			composed := c.digestRefined(rc)

			hw := sha256.New()
			hw.Write([]byte(hierFPVersion))
			hw.Write(composed[:])
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], info.Boundary)
			hw.Write(buf[:])
			copy(info.DAG[:], hw.Sum(nil))
			if memo != nil {
				memo.mu.Lock()
				memo.m[key] = hierFPMemoEntry{dag: info.DAG, boundary: info.Boundary}
				memo.mu.Unlock()
			}
		}

		h.Cells[c.Name] = info
		h.Order = append(h.Order, c.Name)
		state[c.Name] = 2
		return info, nil
	}
	if _, err := visit(top); err != nil {
		return nil, err
	}
	if memo != nil {
		memo.prune(live)
	}
	return h, nil
}
