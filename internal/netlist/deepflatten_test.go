package netlist

import (
	"strings"
	"testing"
)

// deepDeck is a four-level hierarchy expressed as X-instances (SPICE
// .subckt cards do not nest syntactically; depth comes from references):
//
//	chip -> pair -> stage -> buf -> inv
//
// with repeated instances at every level and a diamond: stage reaches
// inv both through buf and directly.
const deepDeck = `
* four-level hierarchy
.subckt inv a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends

.subckt buf a y
x1 a m inv
x2 m y inv
.ends

.subckt stage a y
xb a s buf
xi s y inv
.ends

.subckt pair a y
xs0 a p stage
xs1 p y stage
.ends

.subckt chip a y
xp0 a q pair
xp1 q y pair
.ends
`

func parseDeep(t *testing.T) *Library {
	t.Helper()
	lib, _, err := ParseNamed(strings.NewReader(deepDeck), "deep.sp")
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// TestParseDeepHierarchy: all five cells parse, instance references
// resolve at every depth, and each cell records where it came from.
func TestParseDeepHierarchy(t *testing.T) {
	lib := parseDeep(t)
	wantInst := map[string]int{"inv": 0, "buf": 2, "stage": 2, "pair": 2, "chip": 2}
	for name, n := range wantInst {
		c := lib.Cell(name)
		if c == nil {
			t.Fatalf("cell %s not parsed", name)
		}
		if len(c.Instances) != n {
			t.Errorf("cell %s: %d instances, want %d", name, len(c.Instances), n)
		}
		for _, inst := range c.Instances {
			if lib.Cell(inst.Cell) == nil {
				t.Errorf("cell %s: instance %s references unparsed cell %q", name, inst.Name, inst.Cell)
			}
		}
		if c.Loc.File != "deep.sp" || c.Loc.Line == 0 {
			t.Errorf("cell %s: Loc = %v, want deep.sp with a line", name, c.Loc)
		}
	}
	// The hierarchy fingerprint sees the full depth.
	hfp, err := lib.HierFingerprint(lib.Cell("chip"))
	if err != nil {
		t.Fatal(err)
	}
	if got := hfp.Cells["chip"].Depth; got != 4 {
		t.Errorf("chip depth = %d, want 4", got)
	}
}

// TestFlattenDeep: full expansion through four levels — device counts
// multiply out, hierarchical node names join with "/", supplies stay
// global, and the root interface survives.
func TestFlattenDeep(t *testing.T) {
	lib := parseDeep(t)
	flat, err := lib.Flatten("chip")
	if err != nil {
		t.Fatal(err)
	}
	// inv=2 devices; buf=4; stage=6; pair=12; chip=24.
	if len(flat.Devices) != 24 {
		t.Fatalf("flat devices = %d, want 24", len(flat.Devices))
	}
	if len(flat.Instances) != 0 {
		t.Fatalf("flat circuit still has %d instances", len(flat.Instances))
	}
	if err := flat.Validate(); err != nil {
		t.Fatalf("flat circuit fails Validate: %v", err)
	}
	if len(flat.Ports) != 2 ||
		flat.NodeName(flat.Ports[0]) != "a" || flat.NodeName(flat.Ports[1]) != "y" {
		t.Errorf("flat ports lost the root interface")
	}

	names := make(map[string]bool, len(flat.Devices))
	for _, d := range flat.Devices {
		names[d.Name] = true
	}
	// Deepest path: chip/xp0 -> pair/xs0 -> stage/xb -> buf/x1 -> inv/mn.
	const deepest = "xp0/xs0/xb/x1/mn"
	if !names[deepest] {
		t.Fatalf("device %s missing after flatten; have e.g. %s", deepest, flat.Devices[0].Name)
	}
	// The diamond: inv reached directly from stage, next to the buf path.
	if !names["xp0/xs0/xi/mn"] {
		t.Error("diamond branch device xp0/xs0/xi/mn missing")
	}
	// Repeated instances expand independently.
	if !names["xp1/xs1/xb/x2/mp"] {
		t.Error("repeated-instance device xp1/xs1/xb/x2/mp missing")
	}

	// Supplies are global: exactly one vss node, no prefixed variants.
	vssCount := 0
	for i := range flat.Nodes {
		if flat.IsVss(NodeID(i)) {
			vssCount++
		}
		if strings.HasSuffix(flat.Nodes[i].Name, "/vss") || strings.HasSuffix(flat.Nodes[i].Name, "/vdd") {
			t.Errorf("supply node %q was prefixed", flat.Nodes[i].Name)
		}
	}
	if vssCount != 1 {
		t.Errorf("flat has %d vss nodes, want 1", vssCount)
	}
}

// TestFlattenDeepLocPreserved: a device four levels down still points at
// the deck line of its .subckt body, so diagnostics on the flat view
// stay actionable.
func TestFlattenDeepLocPreserved(t *testing.T) {
	lib := parseDeep(t)
	// Line of "mn y a vss ..." inside .subckt inv in deepDeck.
	wantLine := 0
	for i, line := range strings.Split(deepDeck, "\n") {
		if strings.HasPrefix(line, "mn ") {
			wantLine = i + 1
			break
		}
	}
	if wantLine == 0 {
		t.Fatal("deck fixture lost its mn line")
	}
	flat, err := lib.Flatten("chip")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range flat.Devices {
		if !strings.HasSuffix(d.Name, "/mn") {
			continue
		}
		if d.Loc.File != "deep.sp" || d.Loc.Line != wantLine {
			t.Errorf("device %s: Loc = %v, want deep.sp:%d", d.Name, d.Loc, wantLine)
		}
	}
}

// TestFlattenKeepDeep: keeping a mid-level cell preserves its instances
// with connections remapped into the flat namespace, expands everything
// above it, and keep=nil reproduces Flatten exactly (modulo the ".flat"
// name suffix).
func TestFlattenKeepDeep(t *testing.T) {
	lib := parseDeep(t)
	part, err := lib.FlattenKeep(lib.Cell("chip"), func(cell string) bool { return cell == "stage" })
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Instances) != 4 {
		t.Fatalf("kept %d stage instances, want 4", len(part.Instances))
	}
	if len(part.Devices) != 0 {
		t.Errorf("chip/pair contributed %d devices, want 0 (all content is below stage)", len(part.Devices))
	}
	seen := map[string]bool{}
	for _, inst := range part.Instances {
		if inst.Cell != "stage" {
			t.Errorf("kept instance %s is of %q, want stage", inst.Name, inst.Cell)
		}
		seen[inst.Name] = true
		if len(inst.Conns) != 2 {
			t.Fatalf("instance %s has %d conns, want 2", inst.Name, len(inst.Conns))
		}
		if inst.Loc.File != "deep.sp" || inst.Loc.Line == 0 {
			t.Errorf("instance %s lost its Loc: %v", inst.Name, inst.Loc)
		}
	}
	for _, want := range []string{"xp0/xs0", "xp0/xs1", "xp1/xs0", "xp1/xs1"} {
		if !seen[want] {
			t.Errorf("kept instance %s missing (have %v)", want, seen)
		}
	}
	// The chain a -> q -> y threads through remapped connections: xp0's
	// second stage output must be the node xp1's first stage reads.
	conn := map[string][2]string{}
	for _, inst := range part.Instances {
		conn[inst.Name] = [2]string{part.NodeName(inst.Conns[0]), part.NodeName(inst.Conns[1])}
	}
	if conn["xp0/xs0"][0] != "a" || conn["xp1/xs1"][1] != "y" {
		t.Errorf("chain endpoints wrong: %v", conn)
	}
	if conn["xp0/xs1"][1] != conn["xp1/xs0"][0] {
		t.Errorf("chain broken between pairs: %v", conn)
	}

	// keep=nil is Flatten.
	full, err := lib.FlattenKeep(lib.Cell("chip"), nil)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := lib.Flatten("chip")
	if err != nil {
		t.Fatal(err)
	}
	if full.Name != "chip" || flat.Name != "chip.flat" {
		t.Errorf("names: FlattenKeep=%q Flatten=%q", full.Name, flat.Name)
	}
	if full.Fingerprint() != flat.Fingerprint() {
		t.Error("FlattenKeep(nil) structure differs from Flatten")
	}
}

// TestFlattenDeepErrors: recursion and port-arity mismatches are caught
// at depth with the offending path in the message.
func TestFlattenDeepErrors(t *testing.T) {
	lib := parseDeep(t)
	// Introduce a cycle at the bottom: inv instantiates buf.
	lib.Cell("inv").AddInstance("xr", "buf", "a", "y")
	if _, err := lib.Flatten("chip"); err == nil {
		t.Error("recursive instantiation at depth not reported")
	}

	lib2 := parseDeep(t)
	// Break arity mid-hierarchy: stage connects 3 nodes to buf's 2 ports.
	st := lib2.Cell("stage")
	for _, inst := range st.Instances {
		if inst.Cell == "buf" {
			inst.Conns = append(inst.Conns, st.Node("extra"))
		}
	}
	if _, err := lib2.Flatten("chip"); err == nil {
		t.Error("port-arity mismatch at depth not reported")
	}
}
