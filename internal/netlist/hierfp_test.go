package netlist

import (
	"fmt"
	"testing"
)

// hierLib builds a three-level library: leaf (inverter pair), mid (two
// chained leaf instances), top (two chained mid instances). tweak
// perturbs one leaf transistor width.
func hierLib(tweak float64) *Library {
	lib := NewLibrary()

	leaf := New("leaf")
	leaf.DeclarePort("in")
	leaf.NMOS("mn0", "in", "vss", "x", 1.0+tweak, 0.25)
	leaf.PMOS("mp0", "in", "vdd", "x", 2.0, 0.25)
	leaf.NMOS("mn1", "x", "vss", "out", 1.0, 0.25)
	leaf.PMOS("mp1", "x", "vdd", "out", 2.0, 0.25)
	leaf.DeclarePort("out")
	lib.Add(leaf)

	mid := New("mid")
	mid.DeclarePort("in")
	mid.AddInstance("xa", "leaf", "in", "m")
	mid.AddInstance("xb", "leaf", "m", "out")
	mid.DeclarePort("out")
	lib.Add(mid)

	top := New("top")
	top.DeclarePort("in")
	top.AddInstance("x0", "mid", "in", "t")
	top.AddInstance("x1", "mid", "t", "out")
	top.DeclarePort("out")
	lib.Add(top)
	return lib
}

// TestCellFingerprintGolden pins the hash of a fixed circuit: any
// change here invalidates every hierarchically keyed cache in the wild,
// and must be deliberate (bump hierFPVersion alongside it).
func TestCellFingerprintGolden(t *testing.T) {
	lib := hierLib(0)
	const wantLeaf = "802fde0d95345bba3d1baca1e5d9355a0414a2bd11054893f954c656a94dea5f"
	const wantMid = "0d18d719926bd0b3890e4a2ed7f29488fe2e45c3da805a3acaec5da0855e10db"
	if got := lib.Cell("leaf").CellFingerprint().String(); got != wantLeaf {
		t.Errorf("leaf CellFingerprint = %s, want %s", got, wantLeaf)
	}
	if got := lib.Cell("mid").CellFingerprint().String(); got != wantMid {
		t.Errorf("mid CellFingerprint = %s, want %s", got, wantMid)
	}
}

// TestHierFingerprintGolden pins a DAG hash end to end.
func TestHierFingerprintGolden(t *testing.T) {
	lib := hierLib(0)
	hfp, err := lib.HierFingerprint(lib.Cell("top"))
	if err != nil {
		t.Fatal(err)
	}
	const wantTop = "1f78da1f939de5c376687e9f75af4f7ab97600249e49214d35a2ec2f30a3e988"
	if got := hfp.Cells["top"].DAG.String(); got != wantTop {
		t.Errorf("top DAG = %s, want %s", got, wantTop)
	}
}

// TestCellFingerprintChildEditInvariance: editing or renaming a child
// cell never moves the parent's CellFingerprint, while the flat
// Fingerprint moves on a rename.
func TestCellFingerprintChildEditInvariance(t *testing.T) {
	a, b := hierLib(0), hierLib(0.5)
	if got, want := b.Cell("mid").CellFingerprint(), a.Cell("mid").CellFingerprint(); got != want {
		t.Error("leaf edit moved mid's CellFingerprint")
	}
	// Rename the leaf cell (and references) in b.
	c := hierLib(0)
	c.Cell("leaf").Name = "blatt"
	renamed := NewLibrary()
	for _, name := range c.Cells() {
		cell := c.Cell(name)
		for _, inst := range cell.Instances {
			if inst.Cell == "leaf" {
				inst.Cell = "blatt"
			}
		}
		renamed.Add(cell)
	}
	if renamed.Cell("mid").CellFingerprint() != a.Cell("mid").CellFingerprint() {
		t.Error("child rename moved mid's CellFingerprint")
	}
	if a.Cell("mid").Fingerprint() == renamed.Cell("mid").Fingerprint() {
		t.Error("flat Fingerprint ignored the child rename (it hashes the cell name)")
	}
}

// TestCellFingerprintEqualsFingerprintForLeaves: instance-free cells
// hash identically under both contracts.
func TestCellFingerprintEqualsFingerprintForLeaves(t *testing.T) {
	leaf := hierLib(0).Cell("leaf")
	if leaf.CellFingerprint() != leaf.Fingerprint() {
		t.Error("leaf CellFingerprint != Fingerprint")
	}
}

// addOffPath adds an edit-independent sibling branch: top2 combines the
// tweakable mid column with an "other" cell no tweak touches.
func addOffPath(lib *Library) {
	other := New("other")
	other.DeclarePort("in")
	other.NMOS("m1", "in", "vss", "out", 1.0, 0.25)
	other.PMOS("m2", "in", "vdd", "out", 2.0, 0.25)
	other.DeclarePort("out")
	lib.Add(other)
	top2 := New("top2")
	top2.DeclarePort("in")
	top2.AddInstance("xm", "mid", "in", "a")
	top2.AddInstance("xo", "other", "a", "out")
	top2.DeclarePort("out")
	lib.Add(top2)
}

// TestHierFingerprintLeafEditPath: a one-leaf edit moves exactly the
// leaf's DAG hash and the hashes on its path to the root — the sibling
// branch keeps its hash.
func TestHierFingerprintLeafEditPath(t *testing.T) {
	base, edited := hierLib(0), hierLib(0.5)
	addOffPath(base)
	addOffPath(edited)
	h0, err := base.HierFingerprint(base.Cell("top2"))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := edited.HierFingerprint(edited.Cell("top2"))
	if err != nil {
		t.Fatal(err)
	}
	moved := map[string]bool{}
	for _, name := range h0.Order {
		moved[name] = h0.Cells[name].DAG != h1.Cells[name].DAG
	}
	want := map[string]bool{"leaf": true, "mid": true, "top2": true, "other": false}
	for name, w := range want {
		if moved[name] != w {
			t.Errorf("cell %s: DAG moved=%v, want %v", name, moved[name], w)
		}
	}
}

// TestHierFingerprintRenameInvariance: renaming cells, nodes, devices
// and instances leaves every DAG hash unchanged.
func TestHierFingerprintRenameInvariance(t *testing.T) {
	a := hierLib(0)
	ha, err := a.HierFingerprint(a.Cell("top"))
	if err != nil {
		t.Fatal(err)
	}
	b := hierLib(0)
	b.Cell("leaf").Name = "blatt"
	renamed := NewLibrary()
	for _, name := range b.Cells() {
		cell := b.Cell(name)
		for _, inst := range cell.Instances {
			if inst.Cell == "leaf" {
				inst.Cell = "blatt"
			}
			inst.Name = inst.Name + "_r"
		}
		renamed.Add(cell)
	}
	hb, err := renamed.HierFingerprint(renamed.Cell("top"))
	if err != nil {
		t.Fatal(err)
	}
	if ha.Cells["top"].DAG != hb.Cells["top"].DAG {
		t.Error("cell/instance renames moved the top DAG hash")
	}
	if ha.Cells["leaf"].DAG != hb.Cells["blatt"].DAG {
		t.Error("renamed leaf's DAG hash moved")
	}
}

// TestBoundarySignaturePortOrder: port declaration order is part of the
// boundary (instance connections bind positionally) but not of the
// cell-local structure hash.
func TestBoundarySignaturePortOrder(t *testing.T) {
	mk := func(order []string) *Circuit {
		c := New("cell")
		for _, p := range order {
			c.DeclarePort(p)
		}
		c.NMOS("m1", "a", "vss", "y", 1.0, 0.25)
		c.PMOS("m2", "a", "vdd", "y", 2.0, 0.25)
		return c
	}
	ab := mk([]string{"a", "y"})
	ba := mk([]string{"y", "a"})
	if ab.BoundarySignature() == ba.BoundarySignature() {
		t.Error("port reorder did not change BoundarySignature")
	}
	if ab.CellFingerprint() != ba.CellFingerprint() {
		t.Error("port reorder changed CellFingerprint (declaration order is not structure)")
	}
	// And the DAG hash must see the reorder (callers bind positionally).
	la, lb := NewLibrary(), NewLibrary()
	la.Add(ab)
	lb.Add(ba)
	hA, err := la.HierFingerprint(ab)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := lb.HierFingerprint(ba)
	if err != nil {
		t.Fatal(err)
	}
	if hA.Cells["cell"].DAG == hB.Cells["cell"].DAG {
		t.Error("port reorder did not change the DAG hash")
	}
}

// TestHierFingerprintMemoConsistency: the memoized path returns exactly
// the unmemoized hashes, across edits.
func TestHierFingerprintMemoConsistency(t *testing.T) {
	memo := NewHierFPMemo()
	for _, tweak := range []float64{0, 0.5, 0, 0.5, 0.25} {
		lib := hierLib(tweak)
		plain, err := lib.HierFingerprint(lib.Cell("top"))
		if err != nil {
			t.Fatal(err)
		}
		cached, err := lib.HierFingerprintMemo(lib.Cell("top"), memo)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range plain.Order {
			if plain.Cells[name].DAG != cached.Cells[name].DAG {
				t.Fatalf("tweak %g: memoized DAG for %s differs from unmemoized", tweak, name)
			}
			if plain.Cells[name].Boundary != cached.Cells[name].Boundary {
				t.Fatalf("tweak %g: memoized Boundary for %s differs", tweak, name)
			}
		}
	}
}

// TestHierFingerprintTopology: Order is topological (children first),
// Depth and FlatDevices accumulate, Children keeps first-use order.
func TestHierFingerprintTopology(t *testing.T) {
	lib := hierLib(0)
	hfp, err := lib.HierFingerprint(lib.Cell("top"))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(hfp.Order); got != "[leaf mid top]" {
		t.Errorf("Order = %s, want [leaf mid top]", got)
	}
	top := hfp.Cells["top"]
	if top.Depth != 2 || top.FlatDevices != 16 || top.Instances != 2 {
		t.Errorf("top info = depth %d devices %d instances %d, want 2/16/2",
			top.Depth, top.FlatDevices, top.Instances)
	}
	if fmt.Sprint(top.Children) != "[mid]" {
		t.Errorf("top children = %v", top.Children)
	}
}

// TestHierFingerprintErrors: unknown references and recursion are
// reported, not hashed around.
func TestHierFingerprintErrors(t *testing.T) {
	lib := NewLibrary()
	c := New("c")
	c.AddInstance("x", "nope", "a")
	lib.Add(c)
	if _, err := lib.HierFingerprint(c); err == nil {
		t.Error("unknown cell reference not reported")
	}
	ra, rb := New("ra"), New("rb")
	ra.AddInstance("x", "rb", "a")
	rb.AddInstance("x", "ra", "a")
	rl := NewLibrary()
	rl.Add(ra)
	rl.Add(rb)
	if _, err := rl.HierFingerprint(ra); err == nil {
		t.Error("recursive hierarchy not reported")
	}
}

// TestHierFPMemoPrune: a long-lived memo (a daemon's edit loop) is
// bounded — once superseded keys outnumber the latest build's live set
// by hierMemoSlack, a rebuild prunes them — and pruning never changes
// the hashes a rebuild produces.
func TestHierFPMemoPrune(t *testing.T) {
	memo := NewHierFPMemo()
	// Each tweak moves the leaf's key and, through the child labels,
	// mid's and top's: 3 fresh entries per iteration.
	iters := 2*hierMemoSlack + 1
	for i := 0; i <= iters; i++ {
		lib := hierLib(float64(i) * 0.01)
		if _, err := lib.HierFingerprintMemo(lib.Cell("top"), memo); err != nil {
			t.Fatal(err)
		}
	}
	memo.mu.Lock()
	size := len(memo.m)
	memo.mu.Unlock()
	if size > hierMemoSlack*3 {
		t.Errorf("memo holds %d entries after %d edit iterations, want <= %d", size, iters, hierMemoSlack*3)
	}
	// The surviving memo still replays the last build correctly.
	lib := hierLib(float64(iters) * 0.01)
	want, err := lib.HierFingerprint(lib.Cell("top"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := lib.HierFingerprintMemo(lib.Cell("top"), memo)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range want.Order {
		if got.Cells[name].DAG != want.Cells[name].DAG {
			t.Errorf("cell %s: memoized DAG %s != fresh %s", name, got.Cells[name].DAG, want.Cells[name].DAG)
		}
	}
}
