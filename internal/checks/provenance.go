package checks

import (
	"strings"

	"repro/internal/netlist"
	"repro/internal/recognize"
)

// evidenceBound caps the devices/nets lists attached to a finding so
// evidence on a huge bus node stays readable (and the manifest bounded).
const evidenceBound = 8

// attachProvenance fills each finding's stable ID and evidence block in
// one pass over the battery output. IDs come from the circuit's
// structural signatures, so they survive node/device renames and deck
// reordering; findings on structurally symmetric subjects (which share
// a signature by construction) are disambiguated with "#n" suffixes in
// battery order, keeping the ID multiset itself rename-invariant.
func attachProvenance(fs []Finding, rec *recognize.Result) {
	if len(fs) == 0 {
		return
	}
	sigs := netlist.ComputeSignatures(rec.Circuit)
	ids := make([]string, len(fs))
	for i := range fs {
		f := &fs[i]
		ids[i] = sigs.FindingID("check", f.Check, sigSubject(rec.Circuit, f.Subject))
		f.Evidence = buildEvidence(rec, f)
	}
	netlist.DisambiguateIDs(ids)
	for i := range fs {
		fs[i].ID = ids[i]
	}
}

// sigSubject maps a finding subject to the handle the signature layer
// hashes. Most subjects are node or device names already; composite
// subjects like "latch#0(q)" embed a representative node in parens —
// signing that node instead of the composite string keeps the ID
// rename-invariant.
func sigSubject(c *netlist.Circuit, subject string) string {
	if c.FindNode(subject) != netlist.InvalidNode {
		return subject
	}
	if o := strings.IndexByte(subject, '('); o >= 0 {
		if e := strings.IndexByte(subject[o:], ')'); e > 1 {
			inner := subject[o+1 : o+e]
			if c.FindNode(inner) != netlist.InvalidNode {
				return inner
			}
		}
	}
	return subject
}

// buildEvidence derives the generic evidence block: the devices and
// nets around the subject plus the recognized topology context. Checks
// report a normalized margin, so Measured is the margin against a 0
// threshold.
func buildEvidence(rec *recognize.Result, f *Finding) Evidence {
	c := rec.Circuit
	ev := Evidence{Measured: f.Margin, Threshold: 0, Unit: "margin"}
	name := sigSubject(c, f.Subject)
	if id := c.FindNode(name); id != netlist.InvalidNode {
		ev.Nets = append(ev.Nets, c.NodeName(id))
		for _, d := range c.DevicesOn(id) {
			if len(ev.Devices) >= evidenceBound {
				break
			}
			ev.Devices = append(ev.Devices, d.Name)
		}
		var ctx []string
		if g := rec.GroupDriving(id); g != nil {
			ctx = append(ctx, "driven by "+g.Family.String()+" group")
		}
		if rec.IsClock(id) {
			ctx = append(ctx, "clock net")
		}
		if rec.IsDynamic(id) {
			ctx = append(ctx, "dynamic node")
		}
		if rec.IsState(id) {
			ctx = append(ctx, "state node")
		}
		ev.Context = strings.Join(ctx, ", ")
		return ev
	}
	for _, d := range c.Devices {
		if d.Name != name {
			continue
		}
		ev.Devices = append(ev.Devices, d.Name)
		for _, t := range []netlist.NodeID{d.Gate, d.Source, d.Drain} {
			if len(ev.Nets) >= evidenceBound {
				break
			}
			ev.Nets = append(ev.Nets, c.NodeName(t))
		}
		if gi := deviceGroup(rec, d); gi != nil {
			ev.Context = gi.Family.String() + " group device"
		}
		return ev
	}
	return ev
}

// deviceGroup finds the recognized group containing a device.
func deviceGroup(rec *recognize.Result, d *netlist.Device) *recognize.Group {
	for i, cd := range rec.Circuit.Devices {
		if cd == d && i < len(rec.GroupOfDevice) {
			if gi := rec.GroupOfDevice[i]; gi >= 0 && gi < len(rec.Groups) {
				return rec.Groups[gi]
			}
		}
	}
	return nil
}
