package checks

import (
	"fmt"
	"strconv"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// checkSupplyDifference — Figure 3's third source: "power supply voltage
// differences between the driver and receiver circuits."
//
// A driver in a sagging supply domain produces a high level below the
// receiver's vdd; the difference eats directly into the receiver's noise
// margin, and into a dynamic node's retention margin. Domains come from
// node "supply_domain" attributes plus the per-domain IR drop table in
// Options; the check evaluates every driver→receiver gate crossing.
func checkSupplyDifference(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	if len(opt.SupplyDropMV) == 0 {
		return nil // no IR-drop extraction available: nothing to check
	}
	p := opt.Proc
	c := rec.Circuit
	vtn := p.Vt(process.NMOS, process.StandardVt, process.Fast)
	domainOf := func(gi int) string {
		// A group's domain is the first annotated device terminal's
		// domain; unannotated groups sit in the core domain "".
		for _, d := range rec.Groups[gi].Devices {
			for _, t := range []netlist.NodeID{d.Gate, d.Source, d.Drain} {
				if dom, ok := c.Nodes[t].Attrs["supply_domain"]; ok {
					return dom
				}
			}
		}
		return ""
	}
	dynOrState := make(map[netlist.NodeID]bool)
	for _, id := range rec.DynamicNodes {
		dynOrState[id] = true
	}
	for _, id := range rec.StateNodes {
		dynOrState[id] = true
	}
	for gi, g := range rec.Groups {
		recvDomain := domainOf(gi)
		for _, in := range g.Inputs {
			drv := rec.GroupDriving(in)
			if drv == nil {
				continue
			}
			drvDomain := domainOf(drv.Index)
			if drvDomain == recvDomain {
				continue
			}
			dropMV := opt.SupplyDropMV[drvDomain] - opt.SupplyDropMV[recvDomain]
			if dropMV <= 0 {
				continue // driver domain is at or above the receiver's
			}
			dv := dropMV / 1000
			// Budget: static receivers tolerate ~Vt of high-level sag;
			// dynamic/state receivers only a fraction (the sag adds to
			// every other Figure 3 source).
			limit := vtn
			subjectKind := "static"
			if anyDynamicOutput(g, dynOrState) {
				limit = vtn / 2
				subjectKind = "dynamic"
			}
			margin := (limit - dv) / limit
			out = append(out, Finding{
				Check:   "supply-difference",
				Subject: c.NodeName(in),
				Verdict: verdictFromMargin(margin, 0.3),
				Margin:  margin,
				Detail: fmt.Sprintf("%s receiver in %q driven from %q: ΔV=%.0f mV (budget %.0f mV)",
					subjectKind, orCore(recvDomain), orCore(drvDomain), dropMV, limit*1000),
			})
		}
	}
	return out
}

// anyDynamicOutput reports whether any group output is dynamic or state.
func anyDynamicOutput(g *recognize.Group, dyn map[netlist.NodeID]bool) bool {
	for _, o := range g.Outputs {
		if dyn[o] {
			return true
		}
	}
	return false
}

// orCore names the default domain.
func orCore(d string) string {
	if d == "" {
		return "core"
	}
	return d
}

// checkParticle — Figure 3's substrate source: "Alpha particle and noise
// induced minority carrier charge collection from the substrate and
// wells."
//
// A particle strike deposits charge on a junction; if the node's critical
// charge Qcrit = C·Vdd/2 is below the collected-charge magnitude, the
// stored value flips. Only floating (dynamic/state) nodes matter — a
// driven node is restored. Qcollect defaults to the era-typical value
// and can be overridden for SER-hardening studies.
func checkParticle(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	loads := nodeLoads(rec, p)
	qcol := opt.QCollectFC
	if qcol <= 0 {
		qcol = 50 // fC, typical alpha deposit of the era
	}
	victims := append(append([]netlist.NodeID{}, rec.DynamicNodes...), rec.StateNodes...)
	seen := make(map[netlist.NodeID]bool)
	for _, id := range victims {
		if seen[id] {
			continue
		}
		seen[id] = true
		// A complementary-driven node is restored after a strike; only
		// nodes that actually float (dynamic nodes, pass-gate storage)
		// can lose state to deposited charge.
		if g := rec.GroupDriving(id); g != nil {
			if f := g.Func(id); f != nil && f.Complementary {
				continue
			}
		}
		// Qcrit in fC: C[fF]·V/2.
		qcrit := loads[id] * p.Vdd / 2
		// Margin 1 at Qcrit ≥ 3×Qcollect, 0 at equality.
		margin := (qcrit - qcol) / (2 * qcol)
		if margin > 1 {
			margin = 1
		}
		override := ""
		if s, ok := c.Nodes[id].Attrs["ser_hardened"]; ok {
			if v, err := strconv.ParseFloat(s, 64); err == nil {
				qcrit += v
				margin = (qcrit - qcol) / (2 * qcol)
				override = " (hardening credit applied)"
			}
		}
		// Soft errors are a *rate*, not a deterministic failure: like
		// the electromigration "statistical failures" category, the
		// worst verdict here is Inspect — the designer decides whether
		// the SER budget tolerates the node or it needs hardening.
		verdict := verdictFromMargin(margin, 0.25)
		if verdict == Violation {
			verdict = Inspect
		}
		out = append(out, Finding{
			Check:   "particle",
			Subject: c.NodeName(id),
			Verdict: verdict,
			Margin:  margin,
			Detail:  fmt.Sprintf("Qcrit %.1f fC vs Qcollect %.0f fC%s", qcrit, qcol, override),
		})
	}
	return out
}
