package checks

import (
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// rec recognizes a circuit or fails the test.
func rec(t *testing.T, c *netlist.Circuit) *recognize.Result {
	t.Helper()
	r, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func opts() Options {
	return Options{Proc: process.CMOS075(), PeriodPS: 5000}
}

// addInv appends an inverter with chosen widths.
func addInv(c *netlist.Circuit, name, in, out string, wn, wp float64) {
	c.NMOS(name+"_n", in, "vss", out, wn, 0.75)
	c.PMOS(name+"_p", in, "vdd", out, wp, 0.75)
}

// domino builds a footed domino AND2 with optional keeper.
func domino(keeper bool, internalCapFF float64) *netlist.Circuit {
	c := netlist.New("dom")
	c.DeclarePort("a")
	c.DeclarePort("b")
	c.PMOS("mpre", "phi1", "vdd", "dyn", 4, 0.75)
	c.NMOS("ma", "a", "x1", "dyn", 6, 0.75)
	c.NMOS("mb", "b", "x2", "x1", 6, 0.75)
	c.NMOS("mfoot", "phi1", "vss", "x2", 8, 0.75)
	addInv(c, "buf", "dyn", "out", 2, 4)
	c.DeclarePort("out")
	if keeper {
		c.PMOS("mkeep", "out", "vdd", "dyn", 1, 1.5)
	}
	if internalCapFF > 0 {
		c.AddCap("x1", internalCapFF)
	}
	return c
}

func TestRunAllProducesAllChecks(t *testing.T) {
	c := domino(false, 0)
	rep, err := RunAll(rec(t, c), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings")
	}
	// Every named check must have an entry in ByCheck (even if zero
	// findings, the map key exists).
	for _, name := range CheckNames() {
		if _, ok := rep.ByCheck[name]; !ok {
			t.Errorf("check %s missing from report", name)
		}
	}
	p, i, v := rep.Counts()
	if p+i+v != len(rep.Findings) {
		t.Error("counts do not add up")
	}
	if fe := rep.FilterEffectiveness(); fe < 0 || fe > 1 {
		t.Errorf("filter effectiveness %g out of range", fe)
	}
	if !strings.Contains(rep.Summary(), "beta-ratio") {
		t.Error("summary missing checks")
	}
}

func TestRunSingleAndUnknown(t *testing.T) {
	c := domino(false, 0)
	fs, err := Run("charge-share", rec(t, c), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) == 0 {
		t.Error("charge-share produced nothing for a domino gate")
	}
	if _, err := Run("nope", rec(t, c), opts()); err == nil {
		t.Error("unknown check should fail")
	}
	if _, err := RunAll(rec(t, c), Options{}); err == nil {
		t.Error("missing process should fail")
	}
}

func TestBetaRatioBalancedVsSkewed(t *testing.T) {
	good := netlist.New("good")
	good.DeclarePort("y")
	addInv(good, "u", "a", "y", 2, 5) // ≈balanced (mobility ratio ~2.4)
	bad := netlist.New("bad")
	bad.DeclarePort("y")
	addInv(bad, "u", "a", "y", 20, 1) // grotesquely skewed

	fsGood, err := Run("beta-ratio", rec(t, good), opts())
	if err != nil {
		t.Fatal(err)
	}
	fsBad, err := Run("beta-ratio", rec(t, bad), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fsGood) != 1 || fsGood[0].Verdict != Pass {
		t.Errorf("balanced inverter: %+v", fsGood)
	}
	if len(fsBad) != 1 || fsBad[0].Verdict == Pass {
		t.Errorf("skewed inverter should not pass: %+v", fsBad)
	}
	if fsBad[0].Margin >= fsGood[0].Margin {
		t.Error("skewed margin should be lower")
	}
}

func TestBetaRatioRatioedStructure(t *testing.T) {
	// Pseudo-NMOS with a decisive driver passes; a marginal one fails.
	build := func(wn float64) *netlist.Circuit {
		c := netlist.New("pn")
		c.DeclarePort("y")
		c.PMOS("mload", "vss", "vdd", "y", 2, 1.5)
		c.NMOS("mdrv", "a", "vss", "y", wn, 0.75)
		return c
	}
	fsStrong, err := Run("beta-ratio", rec(t, build(16)), opts())
	if err != nil {
		t.Fatal(err)
	}
	fsWeak, err := Run("beta-ratio", rec(t, build(0.5)), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fsStrong) != 1 || fsStrong[0].Verdict != Pass {
		t.Errorf("strong ratioed driver: %+v", fsStrong)
	}
	if len(fsWeak) != 1 || fsWeak[0].Verdict != Violation {
		t.Errorf("weak ratioed driver should violate: %+v", fsWeak)
	}
}

func TestEdgeRateFlagsOverloadedDriver(t *testing.T) {
	// A minimum inverter driving 2 pF is a slow-edge hazard.
	c := netlist.New("slow")
	c.DeclarePort("y")
	addInv(c, "u", "a", "y", 2, 4)
	c.AddCap("y", 2000)
	fs, err := Run("edge-rate", rec(t, c), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Verdict == Pass {
		t.Errorf("overloaded driver should be flagged: %+v", fs)
	}
	// A lightly loaded one passes.
	c2 := netlist.New("fast")
	c2.DeclarePort("y")
	addInv(c2, "u", "a", "y", 4, 8)
	c2.AddCap("y", 5)
	fs2, err := Run("edge-rate", rec(t, c2), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs2) != 1 || fs2[0].Verdict != Pass {
		t.Errorf("light load should pass: %+v", fs2)
	}
}

func TestChargeShareVerdictScalesWithInternalCap(t *testing.T) {
	small, err := Run("charge-share", rec(t, domino(false, 0)), opts())
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run("charge-share", rec(t, domino(false, 200)), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(small) == 0 || len(big) == 0 {
		t.Fatal("charge-share produced no findings")
	}
	if big[0].Margin >= small[0].Margin {
		t.Errorf("more internal cap must reduce margin: %g vs %g", big[0].Margin, small[0].Margin)
	}
	if big[0].Verdict != Violation {
		t.Errorf("200 fF internal cap on a small dynamic node must violate: %+v", big[0])
	}
}

func TestDynamicLeakageKeeperPasses(t *testing.T) {
	withKeeper, err := Run("dynamic-leakage", rec(t, domino(true, 0)), opts())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range withKeeper {
		if f.Verdict == Pass && strings.Contains(f.Detail, "keeper") {
			found = true
		}
	}
	if !found {
		t.Errorf("keeper should pass leakage check: %+v", withKeeper)
	}
}

func TestDynamicLeakageLowVtWorse(t *testing.T) {
	base := domino(false, 0)
	fsBase, err := Run("dynamic-leakage", rec(t, base), Options{Proc: process.CMOS035LP(), PeriodPS: 6250})
	if err != nil {
		t.Fatal(err)
	}
	leaky := domino(false, 0)
	for _, d := range leaky.Devices {
		d.Vt = process.LowVt
	}
	fsLeaky, err := Run("dynamic-leakage", rec(t, leaky), Options{Proc: process.CMOS035LP(), PeriodPS: 6250})
	if err != nil {
		t.Fatal(err)
	}
	if len(fsBase) == 0 || len(fsLeaky) == 0 {
		t.Fatal("no leakage findings")
	}
	if fsLeaky[0].Margin >= fsBase[0].Margin {
		t.Errorf("low-Vt tree must have less hold margin: %g vs %g", fsLeaky[0].Margin, fsBase[0].Margin)
	}
}

func TestCouplingStaticVsDynamicThreshold(t *testing.T) {
	c := domino(false, 0)
	c.DeclarePort("static_victim")
	addInv(c, "vic", "a", "static_victim", 2, 4)
	// Equalize grounded load so only the restoring-drive distinction
	// (dynamic vs static victim) differs.
	c.AddCap("dyn", 100)
	c.AddCap("static_victim", 100)
	o := opts()
	o.Couplings = []Coupling{
		{Victim: "dyn", Aggressor: "bus1", CapFF: 8},
		{Victim: "static_victim", Aggressor: "bus1", CapFF: 8},
	}
	fs, err := Run("coupling", rec(t, c), o)
	if err != nil {
		t.Fatal(err)
	}
	var dynM, statM float64
	var got int
	for _, f := range fs {
		switch f.Subject {
		case "dyn":
			dynM = f.Margin
			got++
		case "static_victim":
			statM = f.Margin
			got++
		}
	}
	if got != 2 {
		t.Fatalf("expected 2 coupling findings, got %+v", fs)
	}
	if dynM >= statM {
		t.Errorf("same coupling must hurt the dynamic node more: dyn %g vs static %g", dynM, statM)
	}
}

func TestLatchCheckClockedAndKeeper(t *testing.T) {
	c := netlist.New("mix")
	// Clocked latch.
	c.NMOS("pass_n", "phi1", "d", "m", 4, 0.75)
	c.PMOS("pass_p", "phi1n", "d", "m", 4, 0.75)
	addInv(c, "fwd", "m", "q", 2, 4)
	addInv(c, "fb", "q", "m", 1, 2)
	// Unclocked keeper.
	addInv(c, "k1", "s1", "s2", 2, 4)
	addInv(c, "k2", "s2", "s1", 2, 4)
	c.DeclarePort("d")
	fs, err := Run("latch", rec(t, c), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("want 2 latch findings, got %+v", fs)
	}
	for _, f := range fs {
		if f.Verdict != Pass {
			t.Errorf("both latches should pass: %+v", f)
		}
	}
}

func TestWritabilityWeakWriteFlagged(t *testing.T) {
	build := func(wpass float64) *netlist.Circuit {
		c := netlist.New("lat")
		c.DeclarePort("d")
		c.NMOS("pass_n", "phi1", "d", "m", wpass, 0.75)
		c.PMOS("pass_p", "phi1n", "d", "m", wpass, 0.75)
		addInv(c, "fwd", "m", "q", 2, 4)
		addInv(c, "fb", "q", "m", 4, 8) // strong keeper
		return c
	}
	fsWeak, err := Run("writability", rec(t, build(1)), opts())
	if err != nil {
		t.Fatal(err)
	}
	fsStrong, err := Run("writability", rec(t, build(20)), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fsWeak) != 1 || fsWeak[0].Verdict == Pass {
		t.Errorf("weak write vs strong keeper must be flagged: %+v", fsWeak)
	}
	if len(fsStrong) != 1 || fsStrong[0].Verdict != Pass {
		t.Errorf("strong write should pass: %+v", fsStrong)
	}
}

func TestClockRCBudget(t *testing.T) {
	c := domino(false, 0)
	// Load the clock heavily through a resistive spine.
	c.AddResistor("rclk", "phi1", "clkload", 3000)
	c.AddCap("phi1", 500)
	fs, err := Run("clock-rc", rec(t, c), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) == 0 {
		t.Fatal("no clock-rc findings")
	}
	var flagged bool
	for _, f := range fs {
		if f.Subject == "phi1" && f.Verdict != Pass {
			flagged = true
		}
	}
	if !flagged {
		t.Errorf("heavy clock RC should be flagged: %+v", fs)
	}
}

func TestElectromigrationWidthAttribute(t *testing.T) {
	c := netlist.New("em")
	c.DeclarePort("y")
	addInv(c, "u", "a", "y", 40, 0.75)
	c.AddCap("y", 10000) // 10 pF bus at 200 MHz
	o := opts()
	o.ActivityFactor = 1 // a clock-like, always-switching net
	fs, err := Run("electromigration", rec(t, c), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Verdict == Pass {
		t.Errorf("min-width wire at 4 pF should be flagged: %+v", fs)
	}
	// Widening the wire fixes it.
	c.SetAttr(c.FindNode("y"), "wire_width", "20")
	fs2, err := Run("electromigration", rec(t, c), o)
	if err != nil {
		t.Fatal(err)
	}
	if fs2[0].Verdict != Pass {
		t.Errorf("20 µm wire should pass: %+v", fs2)
	}
}

func TestAntennaFromOptionsAndAttr(t *testing.T) {
	c := netlist.New("ant")
	c.DeclarePort("y")
	addInv(c, "u", "a", "y", 2, 4)
	c.SetAttr(c.FindNode("a"), "antenna", "900")
	o := opts()
	o.AntennaRatios = map[string]float64{"y": 100}
	fs, err := Run("antenna", rec(t, c), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("want 2 antenna findings, got %+v", fs)
	}
	byNode := map[string]Verdict{}
	for _, f := range fs {
		byNode[f.Subject] = f.Verdict
	}
	if byNode["y"] != Pass {
		t.Errorf("ratio 100 should pass: %v", byNode["y"])
	}
	if byNode["a"] != Violation {
		t.Errorf("ratio 900 (limit 400) should violate: %v", byNode["a"])
	}
}

func TestHotCarrierFlagsSubminimumLength(t *testing.T) {
	c := netlist.New("hc")
	c.DeclarePort("y")
	c.NMOS("mshort", "a", "vss", "y", 4, 0.5) // below 0.75 Lmin
	c.PMOS("mok", "a", "vdd", "y", 8, 0.75)
	fs, err := Run("hot-carrier", rec(t, c), opts())
	if err != nil {
		t.Fatal(err)
	}
	var short *Finding
	for i := range fs {
		if fs[i].Subject == "mshort" {
			short = &fs[i]
		}
	}
	if short == nil || short.Verdict == Pass {
		t.Errorf("sub-minimum channel must be flagged: %+v", fs)
	}
}

func TestVerdictStringAndMargins(t *testing.T) {
	if Pass.String() != "pass" || Inspect.String() != "inspect" || Violation.String() != "violation" {
		t.Error("verdict strings wrong")
	}
	if verdictFromMargin(0.5, 0.3) != Pass {
		t.Error("margin above threshold should pass")
	}
	if verdictFromMargin(0.1, 0.3) != Inspect {
		t.Error("low positive margin should inspect")
	}
	if verdictFromMargin(-0.1, 0.3) != Violation {
		t.Error("negative margin should violate")
	}
}

func TestCleanDesignMostlyPasses(t *testing.T) {
	// A well-sized static design should overwhelmingly auto-pass —
	// the filtering claim of §2.3.
	c := netlist.New("clean")
	c.DeclarePort("a")
	prev := "a"
	for i := 0; i < 10; i++ {
		next := prev + "x"
		addInv(c, "u"+next, prev, next, 2, 5)
		prev = next
	}
	c.DeclarePort(prev)
	rep, err := RunAll(rec(t, c), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations()) != 0 {
		t.Errorf("clean design has violations: %+v", rep.Violations())
	}
	if fe := rep.FilterEffectiveness(); fe < 0.9 {
		t.Errorf("filter effectiveness %g, want ≥0.9 on clean design\n%s", fe, rep.Summary())
	}
}

func TestSupplyDifferenceCheck(t *testing.T) {
	// Driver inverter in a sagging IO domain feeding a core receiver.
	c := netlist.New("domains")
	c.DeclarePort("y")
	addInv(c, "drv", "a", "m", 2, 4)
	addInv(c, "rcv", "m", "y", 2, 4)
	c.SetAttr(c.FindNode("a"), "supply_domain", "io")
	o := opts()
	// Without IR-drop data the check is silent.
	fs, err := Run("supply-difference", rec(t, c), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("no-extraction run should be silent: %+v", fs)
	}
	// A 150 mV sag in the driver's domain erodes the receiver's margin.
	o.SupplyDropMV = map[string]float64{"io": 150, "": 0}
	fs, err = Run("supply-difference", rec(t, c), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) == 0 {
		t.Fatal("cross-domain crossing not reported")
	}
	if fs[0].Verdict == Violation {
		t.Errorf("150 mV sag on a static receiver should not violate: %+v", fs[0])
	}
	// A 700 mV sag (past Vt) violates.
	o.SupplyDropMV = map[string]float64{"io": 700, "": 0}
	fs, _ = Run("supply-difference", rec(t, c), o)
	if len(fs) == 0 || fs[0].Verdict != Violation {
		t.Errorf("700 mV sag should violate: %+v", fs)
	}
}

func TestParticleCheck(t *testing.T) {
	// A small dynamic node is SER-vulnerable; adding capacitance or a
	// hardening credit fixes it.
	c := domino(false, 0)
	fs, err := Run("particle", rec(t, c), opts())
	if err != nil {
		t.Fatal(err)
	}
	var dyn *Finding
	for i := range fs {
		if fs[i].Subject == "dyn" {
			dyn = &fs[i]
		}
	}
	if dyn == nil {
		t.Fatalf("no particle finding for the dynamic node: %+v", fs)
	}
	if dyn.Verdict == Pass {
		t.Errorf("small dynamic node should not pass SER: %+v", dyn)
	}
	// More capacitance raises Qcrit.
	c2 := domino(false, 0)
	c2.AddCap("dyn", 100)
	fs2, _ := Run("particle", rec(t, c2), opts())
	for _, f := range fs2 {
		if f.Subject == "dyn" && f.Verdict != Pass {
			t.Errorf("100 fF node should pass SER: %+v", f)
		}
	}
	// Statically driven outputs are not victims.
	for _, f := range fs {
		if f.Subject == "out" {
			t.Errorf("driven node reported as SER victim: %+v", f)
		}
	}
}
