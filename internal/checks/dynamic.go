package checks

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// checkCoupling — "Coupling analysis of static and dynamic nodes"
// (Figure 3's first noise source: "interconnect capacitance coupling
// that could corrupt the dynamic node").
//
// The injected noise on a quiet victim when an aggressor swings Vdd is
// ΔV = Vdd · Cc / (Cc + Cground). A statically driven victim recovers
// (its driver fights back), so its threshold is generous; a dynamic or
// state node has no restoring drive while floating, so its threshold is
// a fraction of the device threshold voltage.
func checkCoupling(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	loads := nodeLoads(rec, p)
	vtn := p.Vt(process.NMOS, process.StandardVt, process.Fast)

	// Gather coupling per victim: extracted data plus a wire-fraction
	// estimate for victims with explicit wire load but no extraction.
	type agg struct {
		name  string
		capFF float64
	}
	byVictim := make(map[netlist.NodeID][]agg)
	for _, cp := range opt.Couplings {
		id := c.FindNode(cp.Victim)
		if id == netlist.InvalidNode {
			continue
		}
		byVictim[id] = append(byVictim[id], agg{cp.Aggressor, cp.CapFF})
	}

	check := func(id netlist.NodeID, dynamic bool) {
		var couple float64
		var names string
		for _, a := range byVictim[id] {
			couple += a.capFF
			if names != "" {
				names += ","
			}
			names += a.name
		}
		if couple == 0 {
			return
		}
		total := loads[id] + couple
		// Worst case: opposite-direction aggressor (Miller 2×
		// charge transfer is already in the swing ratio; we use the
		// plain charge-divider with full-swing aggressors).
		dv := p.Vdd * couple / total
		threshold := vtn // dynamic: corrupt at Vt
		if !dynamic {
			threshold = p.Vdd * 0.35 // static: restored; generous margin
		}
		margin := (threshold - dv) / threshold
		kind := "static"
		if dynamic {
			kind = "dynamic"
		}
		out = append(out, Finding{
			Check:   "coupling",
			Subject: c.NodeName(id),
			Verdict: verdictFromMargin(margin, 0.3),
			Margin:  margin,
			Detail:  fmt.Sprintf("%s victim: ΔV=%.2f V from %s (limit %.2f V)", kind, dv, names, threshold),
		})
	}

	dynOrState := make(map[netlist.NodeID]bool)
	for _, id := range rec.DynamicNodes {
		dynOrState[id] = true
	}
	for _, id := range rec.StateNodes {
		dynOrState[id] = true
	}
	seen := make(map[netlist.NodeID]bool)
	for id := range byVictim {
		if !seen[id] {
			seen[id] = true
			check(id, dynOrState[id])
		}
	}
	return out
}

// checkChargeShare — "Dynamic charge share analysis" (Figure 3: "charge
// sharing between the dynamic output node and the internal transistor
// stack nodes").
//
// When the evaluate tree partially opens, the precharged node shares its
// charge with discharged internal nodes: ΔV = Vdd·Cint/(Cint+Cdyn). If
// that droop approaches the output buffer's threshold, the gate falsely
// evaluates.
func checkChargeShare(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	loads := nodeLoads(rec, p)
	vtn := p.Vt(process.NMOS, process.StandardVt, process.Fast)
	for _, g := range rec.Groups {
		if g.Family != recognize.FamilyDynamic {
			continue
		}
		var cint float64
		for _, id := range g.Internal {
			cint += loads[id]
		}
		for _, f := range g.Funcs {
			cdyn := loads[f.Node]
			if cdyn == 0 {
				continue
			}
			dv := p.Vdd * cint / (cint + cdyn)
			margin := (vtn - dv) / vtn
			// A keeper restores slow charge-share droop; it cannot
			// prove the transient safe (that needs SPICE), so the
			// finding is capped at Inspect rather than Violation —
			// exactly the filter-and-let-the-designer-look posture.
			keeper := hasKeeper(rec, c, f.Node)
			detail := fmt.Sprintf("droop %.2f V (Cint %.1f fF vs Cdyn %.1f fF, limit %.2f V)",
				dv, cint, cdyn, vtn)
			verdict := verdictFromMargin(margin, 0.3)
			if keeper && verdict == Violation {
				verdict = Inspect
				if margin < 0 {
					margin = 0
				}
				detail += "; keeper present — verify keeper sizing"
			}
			out = append(out, Finding{
				Check:   "charge-share",
				Subject: c.NodeName(f.Node),
				Verdict: verdict,
				Margin:  margin,
				Detail:  detail,
			})
		}
	}
	return out
}

// hasKeeper reports a non-clock PMOS from vdd on the node (a feedback
// keeper).
func hasKeeper(rec *recognize.Result, c *netlist.Circuit, id netlist.NodeID) bool {
	for _, d := range c.DevicesOn(id) {
		if d.Type == process.PMOS && !rec.IsClock(d.Gate) &&
			(c.IsVdd(d.Source) || c.IsVdd(d.Drain)) {
			return true
		}
	}
	return false
}

// checkDynamicLeakage — "Dynamic node leakage checks" (Figure 3:
// "sub-threshold leakage through the N-device network").
//
// A precharged node must hold its level for the whole evaluate window
// against the off-tree's subthreshold leakage: t_hold = C·ΔV_max/I_leak
// must exceed the phase width with margin, or the node needs a keeper
// (§3's leakage concern, applied at circuit grain).
func checkDynamicLeakage(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	loads := nodeLoads(rec, p)
	vtn := p.Vt(process.NMOS, process.StandardVt, process.Fast)
	halfPeriod := opt.PeriodPS / 2
	for _, g := range rec.Groups {
		if g.Family != recognize.FamilyDynamic {
			continue
		}
		// Does the node have a keeper? A PMOS on the dynamic node gated
		// by something other than the clock (feedback keeper).
		for _, f := range g.Funcs {
			keeper := false
			var leak float64 // µA
			for _, d := range c.DevicesOn(f.Node) {
				if d.Type == process.PMOS && !rec.IsClock(d.Gate) &&
					(c.IsVdd(d.Source) || c.IsVdd(d.Drain)) {
					keeper = true
				}
				if d.Type == process.NMOS {
					leak += p.IleakUA(d.Type, d.Vt, d.W, d.ExtraL, process.Fast)
				}
			}
			if keeper {
				out = append(out, Finding{
					Check: "dynamic-leakage", Subject: c.NodeName(f.Node),
					Verdict: Pass, Margin: 1,
					Detail: "keeper present",
				})
				continue
			}
			if leak == 0 {
				continue
			}
			// Hold time in ps: C[fF]·ΔV[V]/I[µA] → ns·1e3.
			holdPS := loads[f.Node] * vtn / leak * 1e3
			margin := (holdPS - halfPeriod) / (4 * halfPeriod)
			if margin > 5 {
				margin = 5 // cap for readability, keep gradation
			}
			out = append(out, Finding{
				Check:   "dynamic-leakage",
				Subject: c.NodeName(f.Node),
				Verdict: verdictFromMargin(margin, 0.25),
				Margin:  margin,
				Detail: fmt.Sprintf("hold %.0f ps vs evaluate window %.0f ps (leak %.3g µA)",
					holdPS, halfPeriod, leak),
			})
		}
	}
	return out
}
