// Package checks implements the automated circuit-verification battery
// of §4.2 of the paper:
//
//	"The automated CAD circuit verification checks performed at Digital
//	Semiconductor include: Transistor configuration analysis — Beta ratio
//	and device size checks of all complementary and ratioed structures.
//	Clock distribution RC analysis ... Edge rate and delay analysis for
//	clocks and signals. Latch checks. Coupling analysis of static and
//	dynamic nodes. Dynamic charge share analysis. Dynamic node leakage
//	checks. State-element writability and noise margin analysis.
//	Electromigration, statistical and absolute failures. Antenna checks.
//	Hot Carrier and Time Dependant Dielectric Breakdown checks."
//
// Every check follows the paper's filtering philosophy (§2.3): the tool
// classifies each circuit as definitely fine (Pass), definitely broken
// (Violation), or needing designer judgement (Inspect) — "filtering of
// circuits that do not have a problem, and reporting those circuits that
// might have a problem." A check never returns a bare boolean; each
// finding carries a numeric margin so the designer can rank effort.
package checks

import (
	"fmt"
	"sort"

	"repro/internal/process"
	"repro/internal/recognize"
)

// Verdict is the three-state outcome of a filtering check.
type Verdict int

// Verdicts, ordered by severity.
const (
	// Pass: the filter proves the circuit has no problem; the designer
	// never sees it.
	Pass Verdict = iota
	// Inspect: the filter cannot prove safety; the designer must look.
	Inspect
	// Violation: the filter proves a problem.
	Violation
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Inspect:
		return "inspect"
	default:
		return "violation"
	}
}

// Finding is one check result on one circuit object.
type Finding struct {
	// Check is the check's short name (e.g. "beta-ratio").
	Check string
	// Subject names the node, device or group concerned.
	Subject string
	// Verdict classifies the finding.
	Verdict Verdict
	// Margin is a normalized safety margin: ≥1 comfortably safe, 1..0
	// shrinking margin, <0 violated. Margins let reports rank designer
	// attention.
	Margin float64
	// Detail is a human-readable explanation with numbers.
	Detail string
	// ID is the stable finding identity ("check/<name>@<16-hex>"):
	// rename-invariant because the hex half is the subject's structural
	// signature (netlist.Signatures), not its name. Filled by the
	// provenance pass after the battery runs.
	ID string
	// Evidence is the structured context behind the finding, filled by
	// the provenance pass.
	Evidence Evidence
}

// Evidence is the structured context of a finding: what the check
// looked at and what it measured, so run reports can explain a verdict
// without re-running the battery.
type Evidence struct {
	// Devices are the transistors involved (bounded).
	Devices []string
	// Nets are the nodes involved, subject first (bounded).
	Nets []string
	// Context describes the recognized topology around the subject
	// (logic family, dynamic/state-ness).
	Context string
	// Measured and Threshold are the compared quantities in Unit; for
	// normalized checks both are margins against 0.
	Measured, Threshold float64
	// Unit names the quantity ("margin").
	Unit string
}

// Coupling describes extracted coupling capacitance onto a victim node.
type Coupling struct {
	Victim    string
	Aggressor string
	CapFF     float64
}

// Options configures a battery run.
type Options struct {
	// Proc is the process model (required).
	Proc *process.Process
	// PeriodPS is the clock period, needed by leakage-hold, clock-RC
	// and electromigration checks. Zero uses the process's nominal
	// frequency.
	PeriodPS float64
	// Couplings carries extracted coupling caps (victim-keyed) for the
	// coupling-noise analysis. Without extraction data the coupling
	// check estimates from node wire capacitance.
	Couplings []Coupling
	// AntennaRatios carries per-node metal/gate area ratios from layout
	// extraction. Nodes can alternatively be annotated with an
	// "antenna" attribute.
	AntennaRatios map[string]float64
	// ActivityFactor is the fraction of cycles a typical node switches
	// (for electromigration averaging). Default 0.15.
	ActivityFactor float64
	// SupplyDropMV maps supply-domain names (node "supply_domain"
	// attributes; "" is the core domain) to their IR drop in mV, for
	// the supply-difference noise analysis. Empty disables the check.
	SupplyDropMV map[string]float64
	// QCollectFC is the particle-strike collected charge in fC for the
	// alpha/SER check (0 uses the era-typical 50 fC).
	QCollectFC float64
}

// Report aggregates a battery run.
type Report struct {
	Findings []Finding
	// ByCheck counts findings per check name and verdict.
	ByCheck map[string]map[Verdict]int
}

// Counts returns total (pass, inspect, violation) counts.
func (r *Report) Counts() (pass, inspect, violation int) {
	for _, f := range r.Findings {
		switch f.Verdict {
		case Pass:
			pass++
		case Inspect:
			inspect++
		default:
			violation++
		}
	}
	return
}

// Violations returns only the violation findings.
func (r *Report) Violations() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Verdict == Violation {
			out = append(out, f)
		}
	}
	return out
}

// FilterEffectiveness is the fraction of findings auto-passed — the
// paper's measure of how much design the tools keep away from the
// designer's eyes.
func (r *Report) FilterEffectiveness() float64 {
	if len(r.Findings) == 0 {
		return 1
	}
	p, _, _ := r.Counts()
	return float64(p) / float64(len(r.Findings))
}

// Summary renders per-check counts, sorted by check name.
func (r *Report) Summary() string {
	names := make([]string, 0, len(r.ByCheck))
	for n := range r.ByCheck {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		m := r.ByCheck[n]
		s += fmt.Sprintf("%-22s pass=%-4d inspect=%-3d violation=%d\n",
			n, m[Pass], m[Inspect], m[Violation])
	}
	return s
}

// A checkFunc runs one §4.2 check over a recognized circuit.
type checkFunc func(rec *recognize.Result, opt *Options) []Finding

// battery lists all checks in the paper's order.
var battery = []struct {
	name string
	fn   checkFunc
}{
	{"beta-ratio", checkBetaRatio},
	{"clock-rc", checkClockRC},
	{"edge-rate", checkEdgeRate},
	{"latch", checkLatch},
	{"coupling", checkCoupling},
	{"supply-difference", checkSupplyDifference},
	{"particle", checkParticle},
	{"charge-share", checkChargeShare},
	{"dynamic-leakage", checkDynamicLeakage},
	{"writability", checkWritability},
	{"electromigration", checkElectromigration},
	{"antenna", checkAntenna},
	{"hot-carrier", checkHotCarrier},
}

// CheckNames returns the battery's check names in run order.
func CheckNames() []string {
	out := make([]string, len(battery))
	for i, b := range battery {
		out[i] = b.name
	}
	return out
}

// RunAll executes the full battery.
func RunAll(rec *recognize.Result, opt Options) (*Report, error) {
	if opt.Proc == nil {
		return nil, fmt.Errorf("checks: missing process model")
	}
	if opt.PeriodPS <= 0 {
		opt.PeriodPS = 1e6 / opt.Proc.ClockFreqMHz // MHz → ps
	}
	if opt.ActivityFactor <= 0 {
		opt.ActivityFactor = 0.15
	}
	rep := &Report{ByCheck: make(map[string]map[Verdict]int)}
	for _, b := range battery {
		fs := b.fn(rec, &opt)
		rep.Findings = append(rep.Findings, fs...)
		m := rep.ByCheck[b.name]
		if m == nil {
			m = make(map[Verdict]int)
			rep.ByCheck[b.name] = m
		}
		for _, f := range fs {
			m[f.Verdict]++
		}
	}
	attachProvenance(rep.Findings, rec)
	return rep, nil
}

// Run executes a single named check.
func Run(name string, rec *recognize.Result, opt Options) ([]Finding, error) {
	if opt.Proc == nil {
		return nil, fmt.Errorf("checks: missing process model")
	}
	if opt.PeriodPS <= 0 {
		opt.PeriodPS = 1e6 / opt.Proc.ClockFreqMHz
	}
	if opt.ActivityFactor <= 0 {
		opt.ActivityFactor = 0.15
	}
	for _, b := range battery {
		if b.name == name {
			fs := b.fn(rec, &opt)
			attachProvenance(fs, rec)
			return fs, nil
		}
	}
	return nil, fmt.Errorf("checks: unknown check %q (known: %v)", name, CheckNames())
}

// verdictFromMargin applies the standard two-threshold classification:
// margin ≥ inspectAt passes, margin ≥ 0 inspects, below violates.
func verdictFromMargin(margin, inspectAt float64) Verdict {
	switch {
	case margin >= inspectAt:
		return Pass
	case margin >= 0:
		return Inspect
	default:
		return Violation
	}
}
