package checks

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// checkBetaRatio — "Beta ratio and device size checks of all
// complementary and ratioed structures."
//
// For complementary groups, the pull-up/pull-down strength ratio should
// sit near the mobility-compensating ideal so both edges have comparable
// drive; extreme skew signals a sizing mistake. For ratioed groups, the
// intended winner must overpower the load decisively or the output low
// level rises into the receiver's threshold.
func checkBetaRatio(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	for _, g := range rec.Groups {
		switch g.Family {
		case recognize.FamilyStaticCMOS:
			for _, f := range g.Funcs {
				up := bestPathCond(rec, g, f.Node, c.FindNode(netlist.VddName), p)
				down := bestPathCond(rec, g, f.Node, c.FindNode(netlist.VssName), p)
				if up == 0 || down == 0 {
					continue
				}
				ratio := up / down
				// Normalized margin: 1 at perfect balance, 0 at 4×
				// skew either way.
				skew := math.Abs(math.Log2(ratio)) // 0 balanced, 2 at 4×
				margin := 1 - skew/2
				out = append(out, Finding{
					Check:   "beta-ratio",
					Subject: c.NodeName(f.Node),
					Verdict: verdictFromMargin(margin, 0.25),
					Margin:  margin,
					Detail:  fmt.Sprintf("complementary drive ratio up/down = %.2f", ratio),
				})
			}
		case recognize.FamilyRatioed:
			for _, f := range g.Funcs {
				up := bestPathCond(rec, g, f.Node, c.FindNode(netlist.VddName), p)
				down := bestPathCond(rec, g, f.Node, c.FindNode(netlist.VssName), p)
				if up == 0 || down == 0 {
					continue
				}
				// The switching network must beat the always-on load
				// by ≥3× for a solid low (or high) level.
				strongOverWeak := math.Max(up, down) / math.Min(up, down)
				margin := (strongOverWeak - 2) / 2 // 0 at 2×, 0.5 at 3×, 1 at 4×
				out = append(out, Finding{
					Check:   "beta-ratio",
					Subject: c.NodeName(f.Node),
					Verdict: verdictFromMargin(margin, 0.5),
					Margin:  margin,
					Detail:  fmt.Sprintf("ratioed fight %.2f:1 (driver:load)", strongOverWeak),
				})
			}
		}
	}
	return out
}

// bestPathCond returns the strongest (highest-conductance) path from the
// node to the rail, in µA/V-ish drive units (Idsat-based), 0 if none.
func bestPathCond(rec *recognize.Result, g *recognize.Group, from, to netlist.NodeID, p *process.Process) float64 {
	best := 0.0
	for _, path := range rec.ChannelPaths(g, from, to) {
		r := 0.0
		for _, d := range path {
			r += p.Reff(d.Type, d.Vt, d.W, d.Leff(), process.Typical)
		}
		if r > 0 {
			if cond := 1 / r; cond > best {
				best = cond
			}
		}
	}
	return best * 1e6 // 1/Ω → µS for readable magnitudes
}

// checkEdgeRate — "Edge rate and delay analysis for clocks and signals."
//
// A node's output transition time is R_drv·C_load; edges slower than a
// few FO4 delays cause short-circuit current in receivers and widen the
// noise-susceptibility window.
func checkEdgeRate(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	fo4 := p.FO4ps(process.Typical)
	loads := nodeLoads(rec, p)
	for _, g := range rec.Groups {
		for _, f := range g.Funcs {
			up := bestPathCond(rec, g, f.Node, c.FindNode(netlist.VddName), p)
			down := bestPathCond(rec, g, f.Node, c.FindNode(netlist.VssName), p)
			cond := math.Max(up, down)
			weak := math.Min(up, down)
			if weak > 0 {
				cond = weak // slowest edge governs
			}
			if cond == 0 {
				continue
			}
			r := 1e6 / cond // µS → Ω
			edge := 2.2 * r * loads[f.Node] * 1e-3
			// Margin 1 at ≤4 FO4, 0 at 10 FO4.
			margin := (10*fo4 - edge) / (6 * fo4)
			if margin > 1 {
				margin = 1
			}
			out = append(out, Finding{
				Check:   "edge-rate",
				Subject: c.NodeName(f.Node),
				Verdict: verdictFromMargin(margin, 0.35),
				Margin:  margin,
				Detail:  fmt.Sprintf("worst edge %.0f ps (%.1f FO4)", edge, edge/fo4),
			})
		}
	}
	return out
}

// nodeLoads computes nominal load capacitance per node.
func nodeLoads(rec *recognize.Result, p *process.Process) []float64 {
	c := rec.Circuit
	loads := make([]float64, len(c.Nodes))
	for i, n := range c.Nodes {
		loads[i] = n.CapFF
	}
	for _, d := range c.Devices {
		loads[d.Gate] += p.CgateFF(d.W, d.Leff())
		loads[d.Source] += p.CdiffFF(d.W)
		loads[d.Drain] += p.CdiffFF(d.W)
	}
	return loads
}

// checkLatch — "Latch checks." Every recognized state loop must be
// clocked or be a deliberate keeper (static loop of exactly two
// complementary groups); anything else is reported for inspection.
func checkLatch(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	c := rec.Circuit
	for i, l := range rec.Latches {
		subject := fmt.Sprintf("latch#%d(%s)", i, firstName(c, l.StateNodes))
		switch {
		case len(l.Clocks) > 0:
			out = append(out, Finding{
				Check: "latch", Subject: subject, Verdict: Pass, Margin: 1,
				Detail: fmt.Sprintf("clocked by %s, %d state nodes", c.NodeName(l.Clocks[0]), len(l.StateNodes)),
			})
		case l.Static && len(l.Groups) == 2:
			out = append(out, Finding{
				Check: "latch", Subject: subject, Verdict: Pass, Margin: 0.8,
				Detail: "unclocked cross-coupled keeper",
			})
		case l.Static:
			out = append(out, Finding{
				Check: "latch", Subject: subject, Verdict: Inspect, Margin: 0.2,
				Detail: fmt.Sprintf("unclocked static loop through %d groups", len(l.Groups)),
			})
		default:
			// An unclocked loop with members the recognizer could not
			// classify is not a *proven* failure — it is exactly the
			// "might have a problem" bucket: the designer must look.
			out = append(out, Finding{
				Check: "latch", Subject: subject, Verdict: Inspect, Margin: 0,
				Detail: "unclocked loop containing non-static or unrecognized logic",
			})
		}
	}
	return out
}

// checkWritability — "State-element writability and noise margin
// analysis." For each latch, the write path through its clocked pass
// devices must overpower the keeper's feedback drive; a keeper that wins
// makes the latch unwritable.
func checkWritability(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	for i, l := range rec.Latches {
		subject := fmt.Sprintf("latch#%d(%s)", i, firstName(c, l.StateNodes))
		if len(l.Clocks) == 0 {
			continue // keeper loops are written by overdrive; latch check covers them
		}
		// Write strength: strongest clocked pass device on a state node.
		write := 0.0
		var stateNode netlist.NodeID = netlist.InvalidNode
		for _, sn := range l.StateNodes {
			for _, d := range c.DevicesOn(sn) {
				if !rec.IsClock(d.Gate) {
					continue
				}
				cond := 1 / p.Reff(d.Type, d.Vt, d.W, d.Leff(), process.Slow)
				if cond > write {
					write = cond
					stateNode = sn
				}
			}
		}
		if stateNode == netlist.InvalidNode {
			out = append(out, Finding{
				Check: "writability", Subject: subject, Verdict: Inspect, Margin: 0.1,
				Detail: "no clocked write device found on state nodes",
			})
			continue
		}
		// Keeper strength: strongest unclocked drive onto that node at
		// the fast corner (keeper fights hardest when fast).
		keeper := 0.0
		for _, gi := range l.Groups {
			g := rec.Groups[gi]
			for _, rail := range []netlist.NodeID{c.FindNode(netlist.VddName), c.FindNode(netlist.VssName)} {
				for _, path := range rec.ChannelPaths(g, stateNode, rail) {
					clocked := false
					r := 0.0
					for _, d := range path {
						if rec.IsClock(d.Gate) {
							clocked = true
						}
						r += p.Reff(d.Type, d.Vt, d.W, d.Leff(), process.Fast)
					}
					if clocked || r == 0 {
						continue
					}
					if cond := 1 / r; cond > keeper {
						keeper = cond
					}
				}
			}
		}
		if keeper == 0 {
			out = append(out, Finding{
				Check: "writability", Subject: subject, Verdict: Pass, Margin: 1,
				Detail: "dynamic storage node (no keeper to fight)",
			})
			continue
		}
		ratio := write / keeper
		// Margin 0 at 1.5× (barely writable), 1 at 3×.
		margin := (ratio - 1.5) / 1.5
		if margin > 1 {
			margin = 1
		}
		out = append(out, Finding{
			Check:   "writability",
			Subject: subject,
			Verdict: verdictFromMargin(margin, 0.3),
			Margin:  margin,
			Detail:  fmt.Sprintf("write:keeper strength %.2f:1", ratio),
		})
	}
	return out
}

// firstName names the first node of a set for report subjects.
func firstName(c *netlist.Circuit, ids []netlist.NodeID) string {
	if len(ids) == 0 {
		return "?"
	}
	return c.NodeName(ids[0])
}
