package checks

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/process"
	"repro/internal/recognize"
)

// checkClockRC — "Clock distribution RC analysis. Node-by-node clock RC
// analysis. Correlated minimum/maximum RC analysis."
//
// For each clock net: its total load and any extracted resistance give
// an RC settling constant; clock edges slower than a small fraction of
// the period skew every latch fed by the net. The min/max correlation is
// captured by evaluating at ±tolerance and reporting the worst.
func checkClockRC(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	loads := nodeLoads(rec, p)
	limit := opt.PeriodPS * 0.05 // 5% of the cycle
	const mfgTol = 0.15
	for _, ck := range rec.Clocks {
		var r float64
		for _, res := range c.Resistors {
			if res.A == ck || res.B == ck {
				r += res.Ohms
			}
		}
		if r == 0 {
			r = 50 // minimum plausible distribution resistance
		}
		rcMax := r * (1 + mfgTol) * loads[ck] * (1 + mfgTol) * 1e-3 // ps
		margin := (limit - rcMax) / limit
		out = append(out, Finding{
			Check:   "clock-rc",
			Subject: c.NodeName(ck),
			Verdict: verdictFromMargin(margin, 0.4),
			Margin:  margin,
			Detail: fmt.Sprintf("worst RC %.1f ps vs %.1f ps budget (load %.1f fF)",
				rcMax, limit, loads[ck]),
		})
	}
	return out
}

// checkElectromigration — "Electromigration, statistical and absolute
// failures."
//
// The time-averaged current in a driver's output wire is I = C·V·f·AF.
// Compared against the process J limit at an assumed wire width (from
// the node's "wire_width" attribute when extracted, else minimum width):
// the absolute limit is a violation; 70% of it is the statistical
// (cumulative-failure) inspection threshold.
func checkElectromigration(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	loads := nodeLoads(rec, p)
	fGHz := 1e3 / opt.PeriodPS // period in ps → frequency in GHz
	for _, g := range rec.Groups {
		for _, f := range g.Funcs {
			id := f.Node
			// I_avg: C[fF]·V·f[GHz]·AF gives µA (1e-15 F · 1e9 /s);
			// convert to mA for the J limit.
			iAvgMA := loads[id] * p.Vdd * fGHz * opt.ActivityFactor * 1e-3
			width := 1.0 // µm, minimum width default
			if w, ok := c.Nodes[id].Attrs["wire_width"]; ok {
				if v, err := strconv.ParseFloat(w, 64); err == nil && v > 0 {
					width = v
				}
			}
			j := iAvgMA / width
			margin := (p.JmaxMA - j) / p.JmaxMA
			// Statistical threshold: inspect above 70% of the limit.
			out = append(out, Finding{
				Check:   "electromigration",
				Subject: c.NodeName(id),
				Verdict: verdictFromMargin(margin, 0.3),
				Margin:  margin,
				Detail: fmt.Sprintf("J=%.3f mA/µm vs limit %.2f (I=%.3f mA, w=%.1f µm)",
					j, p.JmaxMA, iAvgMA, width),
			})
		}
	}
	return out
}

// checkAntenna — "Antenna checks."
//
// During metal etch, a long wire attached to a gate with no diffusion
// discharge path collects plasma charge proportional to its area; the
// metal-to-gate area ratio must stay below the process limit. Ratios
// come from layout extraction (Options.AntennaRatios or node "antenna"
// attributes); unannotated nodes are skipped (nothing to check until
// layout exists).
func checkAntenna(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	emit := func(name string, ratio float64) {
		margin := (p.AntennaMaxRatio - ratio) / p.AntennaMaxRatio
		out = append(out, Finding{
			Check:   "antenna",
			Subject: name,
			Verdict: verdictFromMargin(margin, 0.25),
			Margin:  margin,
			Detail:  fmt.Sprintf("antenna ratio %.0f vs limit %.0f", ratio, p.AntennaMaxRatio),
		})
	}
	seen := make(map[string]bool)
	for name, ratio := range opt.AntennaRatios {
		if c.FindNode(name) == netlistInvalid {
			continue
		}
		seen[name] = true
		emit(name, ratio)
	}
	for _, n := range c.Nodes {
		if seen[n.Name] {
			continue
		}
		if s, ok := n.Attrs["antenna"]; ok {
			if v, err := strconv.ParseFloat(s, 64); err == nil {
				emit(n.Name, v)
			}
		}
	}
	return out
}

// netlistInvalid mirrors netlist.InvalidNode without another import line.
const netlistInvalid = -1

// checkHotCarrier — "Hot Carrier and Time Dependant Dielectric Breakdown
// checks."
//
// Hot-carrier degradation scales with the peak channel field ≈ Vdd/L;
// TDDB with the oxide field, which tracks Vdd for a given process. The
// filter computes each device's field stress relative to the process's
// design point (nominal Vdd at Lmin) and flags devices pushed beyond it —
// e.g. a device ported from a higher-voltage domain or an L below the
// process minimum.
func checkHotCarrier(rec *recognize.Result, opt *Options) []Finding {
	var out []Finding
	p := opt.Proc
	c := rec.Circuit
	nominal := p.Vdd / p.Lmin
	for _, d := range c.Devices {
		field := p.Vdd / d.Leff()
		rel := field / nominal // ≤1 for L ≥ Lmin
		// Margin 1 at ≤80% of nominal field, 0 at 105%.
		margin := (1.05 - rel) / 0.25
		if margin > 1 {
			margin = 1
		}
		// Only NMOS suffers meaningful hot-carrier stress (electron
		// injection); PMOS gets a 20% relaxation.
		if d.Type == process.PMOS {
			margin = math.Min(1, margin+0.2)
		}
		verdict := verdictFromMargin(margin, 0.2)
		if verdict == Pass {
			// Keep the report small: only emit non-trivial stress.
			if rel < 0.95 {
				continue
			}
		}
		out = append(out, Finding{
			Check:   "hot-carrier",
			Subject: d.Name,
			Verdict: verdict,
			Margin:  margin,
			Detail:  fmt.Sprintf("channel field %.2f V/µm (%.0f%% of process design point)", field, rel*100),
		})
	}
	return out
}
