package checks

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/netlist"
)

// dominoRenamed rebuilds domino(false, 0) with every node and device
// renamed and the elements inserted in a different order — structurally
// identical, textually unrelated.
func dominoRenamed() *netlist.Circuit {
	c := netlist.New("zz")
	c.DeclarePort("p")
	c.DeclarePort("q")
	c.NMOS("t4", "p", "w1", "top", 6, 0.75)
	c.NMOS("t5", "q", "w2", "w1", 6, 0.75)
	c.PMOS("t2", "top", "vdd", "res", 4, 0.75) // buf inverter P half
	c.NMOS("t1", "top", "vss", "res", 2, 0.75) // buf inverter N half
	c.NMOS("t6", "ck", "vss", "w2", 8, 0.75)
	c.PMOS("t3", "ck", "vdd", "top", 4, 0.75)
	c.DeclarePort("res")
	return c
}

// findingIDs runs the battery and returns the sorted finding-ID list.
func findingIDs(t *testing.T, c *netlist.Circuit) []string {
	t.Helper()
	rep, err := RunAll(rec(t, c), opts())
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, f := range rep.Findings {
		if f.ID == "" {
			t.Errorf("finding %s/%s has no ID", f.Check, f.Subject)
		}
		ids = append(ids, f.ID)
	}
	sort.Strings(ids)
	return ids
}

// TestFindingIDsRenameInvariant is the provenance contract: renaming
// every node and device and reordering the deck changes no finding ID,
// while a sizing change does.
func TestFindingIDsRenameInvariant(t *testing.T) {
	base := findingIDs(t, domino(false, 0))
	renamed := findingIDs(t, dominoRenamed())
	if strings.Join(base, "\n") != strings.Join(renamed, "\n") {
		t.Errorf("finding IDs moved under rename+reorder:\n--- original ---\n%s\n--- renamed ---\n%s",
			strings.Join(base, "\n"), strings.Join(renamed, "\n"))
	}

	// Widening the evaluate stack is a structural change: the ID set
	// must move (the same defects now live at a different "place").
	wide := domino(false, 0)
	for i := range wide.Devices {
		if wide.Devices[i].Name == "ma" {
			wide.Devices[i].W = 12
		}
	}
	widened := findingIDs(t, wide)
	if strings.Join(base, "\n") == strings.Join(widened, "\n") {
		t.Error("finding IDs identical after W change — IDs are not structure-sensitive")
	}
}

// TestFindingIDsGolden pins the domino battery's finding IDs to a
// golden file, so an accidental change to the hashing (which would
// silently break every stored baseline manifest) fails loudly.
// Regenerate with: UPDATE_GOLDEN=1 go test ./internal/checks -run Golden
func TestFindingIDsGolden(t *testing.T) {
	got := strings.Join(findingIDs(t, domino(false, 0)), "\n") + "\n"
	golden := filepath.Join("testdata", "finding_ids.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("finding IDs drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEvidenceAttached checks the structured-evidence half of
// provenance: node findings carry their nets and attached devices,
// device findings their terminals, and all carry the measured margin.
func TestEvidenceAttached(t *testing.T) {
	rep, err := RunAll(rec(t, domino(false, 0)), opts())
	if err != nil {
		t.Fatal(err)
	}
	var nodeChecked, devChecked bool
	for _, f := range rep.Findings {
		if f.Evidence.Unit != "margin" {
			t.Errorf("%s %s: evidence unit %q, want margin", f.Check, f.Subject, f.Evidence.Unit)
		}
		if f.Evidence.Measured != f.Margin {
			t.Errorf("%s %s: measured %v != margin %v", f.Check, f.Subject, f.Evidence.Measured, f.Margin)
		}
		if f.Subject == "dyn" {
			nodeChecked = true
			if len(f.Evidence.Nets) == 0 || f.Evidence.Nets[0] != "dyn" {
				t.Errorf("node finding nets = %v, want [dyn]", f.Evidence.Nets)
			}
			if len(f.Evidence.Devices) == 0 {
				t.Error("node finding has no attached devices")
			}
		}
		if f.Subject == "ma" || f.Subject == "mpre" {
			devChecked = true
			if len(f.Evidence.Devices) != 1 || f.Evidence.Devices[0] != f.Subject {
				t.Errorf("device finding devices = %v, want [%s]", f.Evidence.Devices, f.Subject)
			}
		}
	}
	if !nodeChecked {
		t.Error("no finding on node dyn to check evidence for")
	}
	_ = devChecked // device-subject findings are battery-dependent; checked when present
}
