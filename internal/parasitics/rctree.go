// Package parasitics models extracted RC interconnect for the timing and
// electrical verification tools.
//
// §4.3 of the paper identifies the accuracy of parasitic modelling as a
// main determinant of timing-verification quality: "Accuracy of minimum
// and maximum capacitance calculation (fixed, coupling, and transistor
// input)", "Accuracy of RC interconnect models", and the observation
// (Figure 5) that "real gates have multiple inputs/outputs" — a large
// driver is many fingers distributed along an RC grid, not a single
// lumped port.
//
// The package provides three levels of fidelity:
//
//   - RC trees with Elmore delay (the workhorse bound used by the static
//     timing verifier),
//   - min/max capacitance bounding with Miller coupling factors and
//     manufacturing tolerance (the paper's prescription for race-safe
//     analysis), and
//   - a small implicit-Euler transient solver for arbitrary RC networks,
//     standing in for SPICE as the accuracy reference (the paper: "using
//     SPICE on large structures is not feasible"; on our small structures
//     it is, so we use the same trick to calibrate pessimism).
package parasitics

import (
	"fmt"
	"math"
)

// Coupling is a capacitive coupling from a tree node to an aggressor net.
type Coupling struct {
	// Aggressor names the coupled net (informational).
	Aggressor string
	// CapFF is the drawn coupling capacitance in fF.
	CapFF float64
}

// TreeNode is one node of an RC tree.
type TreeNode struct {
	// Name identifies the node.
	Name string
	// CapFF is the grounded capacitance at the node in fF.
	CapFF float64
	// Couplings are coupling capacitances to other nets.
	Couplings []Coupling
	// parent is the index of the parent (-1 at root).
	parent int
	// rOhm is the resistance of the segment from parent to this node.
	rOhm float64
	// children caches the child indices.
	children []int
}

// Tree is an RC tree rooted at a driver node. Node 0 is always the root.
type Tree struct {
	nodes []TreeNode
	index map[string]int
}

// NewTree returns a tree containing only the named root.
func NewTree(root string) *Tree {
	t := &Tree{index: map[string]int{root: 0}}
	t.nodes = append(t.nodes, TreeNode{Name: root, parent: -1})
	return t
}

// AddSegment adds a wire segment from an existing node to a new node with
// the given resistance (Ω) and grounded capacitance (fF) at the far end.
func (t *Tree) AddSegment(from, name string, rOhm, capFF float64) error {
	pi, ok := t.index[from]
	if !ok {
		return fmt.Errorf("parasitics: unknown node %q", from)
	}
	if _, dup := t.index[name]; dup {
		return fmt.Errorf("parasitics: duplicate node %q", name)
	}
	if rOhm < 0 || capFF < 0 {
		return fmt.Errorf("parasitics: negative R or C on segment %s→%s", from, name)
	}
	i := len(t.nodes)
	t.nodes = append(t.nodes, TreeNode{Name: name, parent: pi, rOhm: rOhm, CapFF: capFF})
	t.index[name] = i
	t.nodes[pi].children = append(t.nodes[pi].children, i)
	return nil
}

// AddCap adds grounded capacitance to an existing node.
func (t *Tree) AddCap(name string, capFF float64) error {
	i, ok := t.index[name]
	if !ok {
		return fmt.Errorf("parasitics: unknown node %q", name)
	}
	t.nodes[i].CapFF += capFF
	return nil
}

// AddCoupling adds a coupling capacitance from a node to an aggressor.
func (t *Tree) AddCoupling(name, aggressor string, capFF float64) error {
	i, ok := t.index[name]
	if !ok {
		return fmt.Errorf("parasitics: unknown node %q", name)
	}
	t.nodes[i].Couplings = append(t.nodes[i].Couplings, Coupling{aggressor, capFF})
	return nil
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.nodes) }

// Names returns the node names in index order.
func (t *Tree) Names() []string {
	out := make([]string, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = n.Name
	}
	return out
}

// MillerRange bounds the effective multiplier on coupling capacitance.
// A quiet aggressor contributes 1×; an aggressor switching the same way
// contributes as little as 0×; an aggressor switching opposite
// contributes up to 2× (the "miller coupling capacitance multiplicative
// effects" of §4.3).
type MillerRange struct {
	Min, Max float64
}

// DefaultMiller is the conventional 0–2× window.
var DefaultMiller = MillerRange{Min: 0, Max: 2}

// QuietMiller treats all aggressors as quiet.
var QuietMiller = MillerRange{Min: 1, Max: 1}

// Bounds is a min/max pair (units per context).
type Bounds struct {
	Min, Max float64
}

// Width returns Max-Min.
func (b Bounds) Width() float64 { return b.Max - b.Min }

// NodeCapBounds returns the min/max effective capacitance in fF at one
// node: grounded cap (with manufacturing tolerance mfgTol, e.g. 0.15 for
// ±15%) plus coupling scaled by the Miller window and tolerance.
func (t *Tree) NodeCapBounds(i int, m MillerRange, mfgTol float64) Bounds {
	n := &t.nodes[i]
	couple := 0.0
	for _, c := range n.Couplings {
		couple += c.CapFF
	}
	return Bounds{
		Min: (n.CapFF + couple*m.Min) * (1 - mfgTol),
		Max: (n.CapFF + couple*m.Max) * (1 + mfgTol),
	}
}

// TotalCapBounds returns min/max total capacitance of the tree in fF.
func (t *Tree) TotalCapBounds(m MillerRange, mfgTol float64) Bounds {
	var b Bounds
	for i := range t.nodes {
		nb := t.NodeCapBounds(i, m, mfgTol)
		b.Min += nb.Min
		b.Max += nb.Max
	}
	return b
}

// TotalCap returns the nominal total capacitance (quiet aggressors, no
// tolerance) in fF.
func (t *Tree) TotalCap() float64 {
	return t.TotalCapBounds(QuietMiller, 0).Max
}

// ElmorePS returns the Elmore delay in picoseconds from a driver with
// source resistance rDrvOhm at the root to the named sink, using nominal
// capacitances. Ω·fF = 10⁻³ ps.
func (t *Tree) ElmorePS(rDrvOhm float64, sink string) (float64, error) {
	b, err := t.ElmoreBoundsPS(rDrvOhm, sink, QuietMiller, 0)
	return b.Max, err
}

// ElmoreBoundsPS returns min/max Elmore delay in ps to the sink under the
// Miller window and manufacturing tolerance — the bounded delays §4.3
// requires for race-safe verification. Resistance tolerance tracks the
// capacitance tolerance (correlated corner).
func (t *Tree) ElmoreBoundsPS(rDrvOhm float64, sink string, m MillerRange, mfgTol float64) (Bounds, error) {
	si, ok := t.index[sink]
	if !ok {
		return Bounds{}, fmt.Errorf("parasitics: unknown sink %q", sink)
	}
	// Downstream capacitance of every node.
	nmin := make([]float64, len(t.nodes))
	nmax := make([]float64, len(t.nodes))
	for i := range t.nodes {
		b := t.NodeCapBounds(i, m, mfgTol)
		nmin[i], nmax[i] = b.Min, b.Max
	}
	downMin := make([]float64, len(t.nodes))
	downMax := make([]float64, len(t.nodes))
	// Children have larger indices than parents (construction order),
	// so one reverse sweep accumulates subtree sums.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		downMin[i] += nmin[i]
		downMax[i] += nmax[i]
		if p := t.nodes[i].parent; p >= 0 {
			downMin[p] += downMin[i]
			downMax[p] += downMax[i]
		}
	}
	// Elmore delay to sink: Σ over segments on root→sink path of
	// R_seg · C_downstream(seg) plus the driver resistance times total.
	var b Bounds
	b.Min = rDrvOhm * (1 - mfgTol) * downMin[0]
	b.Max = rDrvOhm * (1 + mfgTol) * downMax[0]
	for i := si; i > 0; i = t.nodes[i].parent {
		r := t.nodes[i].rOhm
		b.Min += r * (1 - mfgTol) * downMin[i]
		b.Max += r * (1 + mfgTol) * downMax[i]
	}
	// Ω·fF → ps.
	b.Min *= 1e-3 * ln2over1 // 0.69·RC for 50% crossing
	b.Max *= 1e-3 * ln2over1
	return b, nil
}

// ln2over1 is ln 2, the 50%-crossing factor for a single-pole response.
const ln2over1 = 0.6931471805599453

// Line builds an n-segment RC π-ladder from root "in" to sink
// "out", distributing total resistance and capacitance evenly. It is the
// standard discretization of a uniform wire; names of interior nodes are
// "w1".."w(n-1)".
func Line(n int, totalROhm, totalCapFF float64) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("parasitics: Line needs ≥1 segment, got %d", n)
	}
	t := NewTree("in")
	r := totalROhm / float64(n)
	c := totalCapFF / float64(n)
	// Half-cap at the near end.
	t.nodes[0].CapFF = c / 2
	prev := "in"
	for i := 1; i <= n; i++ {
		name := "out"
		if i < n {
			name = fmt.Sprintf("w%d", i)
		}
		capHere := c
		if i == n {
			capHere = c / 2
		}
		if err := t.AddSegment(prev, name, r, capHere); err != nil {
			return nil, err
		}
		prev = name
	}
	return t, nil
}

// WorstSink returns the name of the sink with the largest nominal Elmore
// delay from the root (ties broken by index order).
func (t *Tree) WorstSink(rDrvOhm float64) (string, float64) {
	worst, wd := t.nodes[0].Name, 0.0
	for _, n := range t.nodes {
		if len(n.children) > 0 {
			continue
		}
		d, err := t.ElmorePS(rDrvOhm, n.Name)
		if err == nil && d > wd {
			worst, wd = n.Name, d
		}
	}
	return worst, wd
}

// EffectiveRes returns the total path resistance in Ω from root to sink.
func (t *Tree) EffectiveRes(sink string) (float64, error) {
	si, ok := t.index[sink]
	if !ok {
		return 0, fmt.Errorf("parasitics: unknown sink %q", sink)
	}
	r := 0.0
	for i := si; i > 0; i = t.nodes[i].parent {
		r += t.nodes[i].rOhm
	}
	return r, nil
}

// Validate checks tree invariants (indices, non-negative values).
func (t *Tree) Validate() error {
	for i, n := range t.nodes {
		if i == 0 && n.parent != -1 {
			return fmt.Errorf("parasitics: root has a parent")
		}
		if i > 0 && (n.parent < 0 || n.parent >= i) {
			return fmt.Errorf("parasitics: node %s has invalid parent %d", n.Name, n.parent)
		}
		if n.CapFF < 0 || n.rOhm < 0 {
			return fmt.Errorf("parasitics: node %s has negative R/C", n.Name)
		}
		if math.IsNaN(n.CapFF) || math.IsNaN(n.rOhm) {
			return fmt.Errorf("parasitics: node %s has NaN parameters", n.Name)
		}
	}
	return nil
}
