package parasitics

import (
	"fmt"
	"math"
)

// Network is a general linear RC network for transient analysis — the
// toolkit's SPICE stand-in. Nodes carry grounded capacitance; resistors
// connect node pairs; voltage sources pin nodes through a source
// resistance. Node 0 is ground.
type Network struct {
	names []string
	index map[string]int
	capFF []float64
	res   []resistor
	srcs  []source
}

type resistor struct {
	a, b int
	ohm  float64
}

type source struct {
	node int
	ohm  float64
	// level returns the source voltage at time t (ps).
	level func(tPS float64) float64
}

// NewNetwork returns an empty network with only the ground node.
func NewNetwork() *Network {
	n := &Network{index: map[string]int{"gnd": 0}}
	n.names = append(n.names, "gnd")
	n.capFF = append(n.capFF, 0)
	return n
}

// node interns a node name.
func (n *Network) node(name string) int {
	if i, ok := n.index[name]; ok {
		return i
	}
	i := len(n.names)
	n.names = append(n.names, name)
	n.capFF = append(n.capFF, 0)
	n.index[name] = i
	return i
}

// AddCap adds grounded capacitance (fF) at a node.
func (n *Network) AddCap(name string, fF float64) {
	n.capFF[n.node(name)] += fF
}

// AddRes adds a resistor (Ω) between two nodes.
func (n *Network) AddRes(a, b string, ohm float64) error {
	if ohm <= 0 {
		return fmt.Errorf("parasitics: resistor %s-%s must be positive, got %g", a, b, ohm)
	}
	n.res = append(n.res, resistor{n.node(a), n.node(b), ohm})
	return nil
}

// AddStep drives a node through a source resistance with a voltage step
// from v0 to v1 at t=0.
func (n *Network) AddStep(name string, ohm, v0, v1 float64) error {
	if ohm <= 0 {
		return fmt.Errorf("parasitics: source resistance must be positive, got %g", ohm)
	}
	n.srcs = append(n.srcs, source{n.node(name), ohm, func(t float64) float64 {
		if t >= 0 {
			return v1
		}
		return v0
	}})
	return nil
}

// AddRamp drives a node through a source resistance with a linear ramp
// from v0 to v1 over risePS.
func (n *Network) AddRamp(name string, ohm, v0, v1, risePS float64) error {
	if ohm <= 0 || risePS <= 0 {
		return fmt.Errorf("parasitics: source needs positive resistance and rise time")
	}
	n.srcs = append(n.srcs, source{n.node(name), ohm, func(t float64) float64 {
		switch {
		case t <= 0:
			return v0
		case t >= risePS:
			return v1
		default:
			return v0 + (v1-v0)*t/risePS
		}
	}})
	return nil
}

// FromTree converts an RC tree (couplings treated as grounded at the
// nominal Miller factor of 1) into a network, returning it without
// sources attached.
func FromTree(t *Tree) *Network {
	n := NewNetwork()
	for i := range t.nodes {
		tn := &t.nodes[i]
		c := tn.CapFF
		for _, cp := range tn.Couplings {
			c += cp.CapFF
		}
		n.AddCap(tn.Name, c)
		if tn.parent >= 0 {
			r := tn.rOhm
			if r <= 0 {
				r = 1e-3 // an ideal short, numerically
			}
			// Errors impossible: r > 0 by construction here.
			if err := n.AddRes(t.nodes[tn.parent].Name, tn.Name, r); err != nil {
				panic(err)
			}
		}
	}
	return n
}

// TransientResult holds sampled waveforms.
type TransientResult struct {
	// TimesPS are the sample instants.
	TimesPS []float64
	// V maps node name to its waveform (same length as TimesPS).
	V map[string][]float64
}

// CrossingPS returns the first time the node's waveform crosses the given
// voltage (linear interpolation), or NaN if it never does.
func (r *TransientResult) CrossingPS(node string, v float64) float64 {
	w, ok := r.V[node]
	if !ok || len(w) == 0 {
		return math.NaN()
	}
	rising := w[len(w)-1] > w[0]
	for i := 1; i < len(w); i++ {
		crossed := (rising && w[i-1] < v && w[i] >= v) || (!rising && w[i-1] > v && w[i] <= v)
		if crossed {
			f := (v - w[i-1]) / (w[i] - w[i-1])
			return r.TimesPS[i-1] + f*(r.TimesPS[i]-r.TimesPS[i-1])
		}
	}
	return math.NaN()
}

// Final returns the node's last sampled voltage.
func (r *TransientResult) Final(node string) float64 {
	w := r.V[node]
	if len(w) == 0 {
		return math.NaN()
	}
	return w[len(w)-1]
}

// Transient integrates the network from the given initial node voltages
// (missing names start at 0) for duration picoseconds with the given step,
// using implicit (backward) Euler with Gauss–Seidel solves. It is
// unconditionally stable, so the step only limits accuracy.
func (n *Network) Transient(initial map[string]float64, durationPS, stepPS float64) (*TransientResult, error) {
	if durationPS <= 0 || stepPS <= 0 {
		return nil, fmt.Errorf("parasitics: duration and step must be positive")
	}
	nn := len(n.names)
	v := make([]float64, nn)
	for name, val := range initial {
		if i, ok := n.index[name]; ok {
			v[i] = val
		}
	}
	v[0] = 0 // ground

	// Conductance structure.
	type edge struct {
		to int
		g  float64
	}
	adj := make([][]edge, nn)
	for _, r := range n.res {
		g := 1 / r.ohm
		adj[r.a] = append(adj[r.a], edge{r.b, g})
		adj[r.b] = append(adj[r.b], edge{r.a, g})
	}
	// fF/ps → Siemens conversion: 1 fF/ps = 1e-3 S.
	const ffPerPS = 1e-3

	steps := int(durationPS/stepPS) + 1
	res := &TransientResult{V: make(map[string][]float64, nn)}
	for i := 1; i < nn; i++ {
		res.V[n.names[i]] = make([]float64, 0, steps)
	}
	record := func(t float64) {
		res.TimesPS = append(res.TimesPS, t)
		for i := 1; i < nn; i++ {
			res.V[n.names[i]] = append(res.V[n.names[i]], v[i])
		}
	}
	record(0)

	next := make([]float64, nn)
	for s := 1; s <= steps; s++ {
		t := float64(s) * stepPS
		copy(next, v)
		// Gauss–Seidel sweeps for the implicit system.
		for sweep := 0; sweep < 60; sweep++ {
			maxDelta := 0.0
			for i := 1; i < nn; i++ {
				gc := n.capFF[i] * ffPerPS / stepPS
				num := gc * v[i]
				den := gc
				for _, e := range adj[i] {
					num += e.g * next[e.to]
					den += e.g
				}
				for _, src := range n.srcs {
					if src.node == i {
						g := 1 / src.ohm
						num += g * src.level(t)
						den += g
					}
				}
				if den == 0 {
					continue // isolated node with no cap: hold
				}
				nv := num / den
				if d := math.Abs(nv - next[i]); d > maxDelta {
					maxDelta = d
				}
				next[i] = nv
			}
			if maxDelta < 1e-9 {
				break
			}
		}
		copy(v, next)
		record(t)
	}
	return res, nil
}
