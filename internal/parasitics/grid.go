package parasitics

import (
	"fmt"
	"math"
)

// DistributedGate models Figure 5 of the paper: "a large inverter is
// commonly implemented with many smaller transistor fingers distributed
// across a large area along the output node. This results in the output
// of [the] inverter tied into multiple positions along the RC grid...
// additionally complicated by the fact that the inputs of the individual
// inverter transistors are also themselves outputs of another RC grid."
//
// Two delay models are provided. Lumped is the "Simple" picture: one
// ideal port, all capacitance lumped behind one switch resistance.
// Distributed is the "Reality" picture: F fingers tapping the output RC
// line at intervals, each switching only when the input RC line has
// reached *its* tap. The gap between the two is the modelling error the
// paper warns about.
type DistributedGate struct {
	// Fingers is the number of parallel transistor fingers (≥1).
	Fingers int
	// RdrvTotal is the switching resistance in Ω of all fingers in
	// parallel (the lumped driver strength).
	RdrvTotal float64
	// InRes/InCap are total input-wire resistance (Ω) and capacitance
	// (fF) across the finger span.
	InRes, InCap float64
	// RinDrv is the resistance (Ω) of the previous stage driving the
	// input wire.
	RinDrv float64
	// CgPerFinger is the gate capacitance (fF) of one finger.
	CgPerFinger float64
	// OutRes/OutCap are total output-wire resistance (Ω) and
	// capacitance (fF) across the finger span.
	OutRes, OutCap float64
	// CLoad is the receiving load (fF) at the far end of the output.
	CLoad float64
	// Vdd is the supply (V); delays measure 50% crossings.
	Vdd float64
}

// Validate checks parameters.
func (g *DistributedGate) Validate() error {
	switch {
	case g.Fingers < 1:
		return fmt.Errorf("parasitics: gate needs ≥1 finger")
	case g.RdrvTotal <= 0 || g.RinDrv <= 0:
		return fmt.Errorf("parasitics: driver resistances must be positive")
	case g.Vdd <= 0:
		return fmt.Errorf("parasitics: Vdd must be positive")
	case g.InRes < 0 || g.InCap < 0 || g.OutRes < 0 || g.OutCap < 0 || g.CLoad < 0 || g.CgPerFinger < 0:
		return fmt.Errorf("parasitics: negative parasitics")
	}
	return nil
}

// LumpedDelayPS is the "Simple" model: the whole gate is one switch of
// RdrvTotal at the near end of the output line; the input wire's effect
// on finger turn-on is ignored entirely (single input port).
func (g *DistributedGate) LumpedDelayPS() (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	line, err := Line(maxInt(g.Fingers, 1), g.OutRes, g.OutCap)
	if err != nil {
		return 0, err
	}
	if err := line.AddCap("out", g.CLoad); err != nil {
		return 0, err
	}
	return line.ElmorePS(g.RdrvTotal, "out")
}

// DistributedDelayPS is the "Reality" model, solved by transient
// analysis: finger i taps the output line at position i and switches
// with a delay equal to the input line's charging time at its tap.
// Returned is the 50% crossing at the far end ("out"), measured from the
// input source step.
func (g *DistributedGate) DistributedDelayPS() (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	f := g.Fingers

	// Stage 1: input grid arrival at each finger tap (Elmore of the
	// input line with gate loads attached).
	inLine, err := Line(f, g.InRes, g.InCap)
	if err != nil {
		return 0, err
	}
	taps := make([]string, f)
	for i := 1; i <= f; i++ {
		name := "out"
		if i < f {
			name = fmt.Sprintf("w%d", i)
		}
		taps[i-1] = name
		if err := inLine.AddCap(name, g.CgPerFinger); err != nil {
			return 0, err
		}
	}
	arrive := make([]float64, f)
	for i, tap := range taps {
		d, err := inLine.ElmorePS(g.RinDrv, tap)
		if err != nil {
			return 0, err
		}
		arrive[i] = d
	}

	// Stage 2: output grid transient with per-finger delayed switches.
	net := NewNetwork()
	segR := g.OutRes / float64(f)
	segC := g.OutCap / float64(f)
	prev := "drv0"
	net.AddCap(prev, segC/2)
	outTaps := []string{prev}
	for i := 1; i < f; i++ {
		name := fmt.Sprintf("o%d", i)
		if err := net.AddRes(prev, name, segR); err != nil {
			return 0, err
		}
		net.AddCap(name, segC)
		outTaps = append(outTaps, name)
		prev = name
	}
	if err := net.AddRes(prev, "out", segR); err != nil {
		return 0, err
	}
	net.AddCap("out", segC/2+g.CLoad)

	rFinger := g.RdrvTotal * float64(f)
	for i, tap := range outTaps {
		d := arrive[i]
		// Each finger pulls its tap toward vdd once its input arrives.
		if err := net.addDelayedStep(tap, rFinger, 0, g.Vdd, d); err != nil {
			return 0, err
		}
	}

	// Simulate long enough: several lumped time constants.
	tau := (g.RdrvTotal + g.OutRes) * (g.OutCap + g.CLoad) * 1e-3 // ps
	maxArr := 0.0
	for _, a := range arrive {
		if a > maxArr {
			maxArr = a
		}
	}
	dur := 10*tau + 2*maxArr + 10
	step := dur / 4000
	res, err := net.Transient(nil, dur, step)
	if err != nil {
		return 0, err
	}
	cross := res.CrossingPS("out", g.Vdd/2)
	if math.IsNaN(cross) {
		return 0, fmt.Errorf("parasitics: output never crossed 50%% in %.0f ps", dur)
	}
	return cross, nil
}

// ModelErrorPS returns (lumped, distributed, distributed-lumped): the
// Figure 5 headline number — how much delay the "Simple" single-port
// model misses.
func (g *DistributedGate) ModelErrorPS() (lumped, distributed, errPS float64, err error) {
	lumped, err = g.LumpedDelayPS()
	if err != nil {
		return 0, 0, 0, err
	}
	distributed, err = g.DistributedDelayPS()
	if err != nil {
		return 0, 0, 0, err
	}
	return lumped, distributed, distributed - lumped, nil
}

// addDelayedStep is AddStep with a turn-on delay.
func (n *Network) addDelayedStep(name string, ohm, v0, v1, delayPS float64) error {
	if ohm <= 0 {
		return fmt.Errorf("parasitics: source resistance must be positive")
	}
	n.srcs = append(n.srcs, source{n.node(name), ohm, func(t float64) float64 {
		if t >= delayPS {
			return v1
		}
		return v0
	}})
	return nil
}

// maxInt returns the larger int.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
