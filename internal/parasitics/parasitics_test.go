package parasitics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTreeBuilderErrors(t *testing.T) {
	tr := NewTree("root")
	if err := tr.AddSegment("nope", "a", 1, 1); err == nil {
		t.Error("unknown parent should fail")
	}
	if err := tr.AddSegment("root", "a", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddSegment("root", "a", 1, 1); err == nil {
		t.Error("duplicate node should fail")
	}
	if err := tr.AddSegment("root", "b", -1, 1); err == nil {
		t.Error("negative R should fail")
	}
	if err := tr.AddCap("zz", 1); err == nil {
		t.Error("AddCap unknown node should fail")
	}
	if err := tr.AddCoupling("zz", "agg", 1); err == nil {
		t.Error("AddCoupling unknown node should fail")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
}

func TestElmoreSingleSegment(t *testing.T) {
	// Driver R=1kΩ into a single 100 fF cap: delay = 0.69·R·C = 69 ps.
	tr := NewTree("drv")
	if err := tr.AddSegment("drv", "out", 0, 100); err != nil {
		t.Fatal(err)
	}
	d, err := tr.ElmorePS(1000, "out")
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6931 * 1000 * 100 * 1e-3
	if math.Abs(d-want) > 0.1 {
		t.Errorf("Elmore = %g ps, want ≈%g", d, want)
	}
}

func TestElmoreLadderMonotone(t *testing.T) {
	// Downstream sinks must have monotonically increasing delay.
	tr, err := Line(10, 2000, 200)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, sink := range []string{"w1", "w3", "w5", "w9", "out"} {
		d, err := tr.ElmorePS(500, sink)
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Errorf("delay to %s = %g not increasing (prev %g)", sink, d, prev)
		}
		prev = d
	}
}

func TestElmoreBoundsOrdering(t *testing.T) {
	tr, err := Line(5, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AddCoupling("w2", "aggr", 30); err != nil {
		t.Fatal(err)
	}
	b, err := tr.ElmoreBoundsPS(500, "out", DefaultMiller, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	nom, err := tr.ElmorePS(500, "out")
	if err != nil {
		t.Fatal(err)
	}
	if !(b.Min < nom && nom < b.Max) {
		t.Errorf("bounds [%g, %g] should bracket nominal %g", b.Min, b.Max, nom)
	}
	if b.Width() <= 0 {
		t.Error("bounds width must be positive with coupling present")
	}
}

func TestCapBounds(t *testing.T) {
	tr := NewTree("r")
	if err := tr.AddSegment("r", "n", 10, 100); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddCoupling("n", "agg", 50); err != nil {
		t.Fatal(err)
	}
	// Quiet aggressor, no tolerance: coupling counts 1×.
	b := tr.NodeCapBounds(1, QuietMiller, 0)
	if b.Min != 150 || b.Max != 150 {
		t.Errorf("quiet bounds = %+v, want 150/150", b)
	}
	// Full Miller window: 100..200.
	b = tr.NodeCapBounds(1, DefaultMiller, 0)
	if b.Min != 100 || b.Max != 200 {
		t.Errorf("miller bounds = %+v, want 100/200", b)
	}
	// With ±10% tolerance.
	b = tr.NodeCapBounds(1, DefaultMiller, 0.10)
	if math.Abs(b.Min-90) > 1e-9 || math.Abs(b.Max-220) > 1e-9 {
		t.Errorf("tolerance bounds = %+v, want 90/220", b)
	}
	if got := tr.TotalCap(); got != 150 {
		t.Errorf("TotalCap = %g, want 150", got)
	}
}

func TestWorstSink(t *testing.T) {
	tr := NewTree("drv")
	must(t, tr.AddSegment("drv", "near", 100, 10))
	must(t, tr.AddSegment("drv", "mid", 500, 10))
	must(t, tr.AddSegment("mid", "far", 500, 50))
	sink, d := tr.WorstSink(200)
	if sink != "far" {
		t.Errorf("worst sink = %s, want far", sink)
	}
	if d <= 0 {
		t.Error("worst delay must be positive")
	}
}

func TestEffectiveRes(t *testing.T) {
	tr, err := Line(4, 800, 40)
	if err != nil {
		t.Fatal(err)
	}
	r, err := tr.EffectiveRes("out")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-800) > 1e-9 {
		t.Errorf("EffectiveRes = %g, want 800", r)
	}
}

func TestLineErrors(t *testing.T) {
	if _, err := Line(0, 1, 1); err == nil {
		t.Error("Line(0) should fail")
	}
}

// Property: Elmore delay increases with added capacitance anywhere.
func TestElmoreMonotoneInCapProperty(t *testing.T) {
	f := func(whereRaw, extraRaw uint8) bool {
		tr, err := Line(6, 1200, 120)
		if err != nil {
			return false
		}
		base, err := tr.ElmorePS(300, "out")
		if err != nil {
			return false
		}
		names := tr.Names()
		where := names[int(whereRaw)%len(names)]
		if err := tr.AddCap(where, 1+float64(extraRaw)); err != nil {
			return false
		}
		after, err := tr.ElmorePS(300, "out")
		if err != nil {
			return false
		}
		return after >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransientRCStep(t *testing.T) {
	// Single RC: R=1kΩ, C=100fF → τ=100 ps. v(τ) = 63.2% of 1 V;
	// 50% crossing at 69.3 ps.
	n := NewNetwork()
	n.AddCap("a", 100)
	if err := n.AddStep("a", 1000, 0, 1); err != nil {
		t.Fatal(err)
	}
	res, err := n.Transient(nil, 500, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	cross := res.CrossingPS("a", 0.5)
	if math.Abs(cross-69.3) > 2 {
		t.Errorf("50%% crossing = %g ps, want ≈69.3", cross)
	}
	if f := res.Final("a"); math.Abs(f-1) > 0.01 {
		t.Errorf("final = %g, want ≈1", f)
	}
}

func TestTransientMatchesElmoreOnLadder(t *testing.T) {
	// On a well-behaved ladder, the Elmore bound is within ~2× of the
	// transient 50% crossing and never below ~0.5× (textbook property:
	// Elmore over-estimates the 50% delay of monotone RC responses).
	tr, err := Line(8, 2000, 160)
	if err != nil {
		t.Fatal(err)
	}
	elm, err := tr.ElmorePS(500, "out")
	if err != nil {
		t.Fatal(err)
	}
	net := FromTree(tr)
	if err := net.AddStep("in", 500, 0, 1); err != nil {
		t.Fatal(err)
	}
	res, err := net.Transient(nil, 8*elm, elm/400)
	if err != nil {
		t.Fatal(err)
	}
	cross := res.CrossingPS("out", 0.5)
	if math.IsNaN(cross) {
		t.Fatal("no crossing")
	}
	ratio := elm / cross
	if ratio < 0.5 || ratio > 2.2 {
		t.Errorf("Elmore %g ps vs transient %g ps: ratio %g out of expected band", elm, cross, ratio)
	}
}

func TestTransientChargeConservationDecay(t *testing.T) {
	// Two caps joined by a resistor with no sources: voltages converge
	// to the charge-weighted average.
	n := NewNetwork()
	n.AddCap("a", 100)
	n.AddCap("b", 300)
	if err := n.AddRes("a", "b", 1000); err != nil {
		t.Fatal(err)
	}
	res, err := n.Transient(map[string]float64{"a": 1, "b": 0}, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (100*1 + 300*0) / 400.0
	if got := res.Final("a"); math.Abs(got-want) > 0.01 {
		t.Errorf("final a = %g, want %g", got, want)
	}
	if got := res.Final("b"); math.Abs(got-want) > 0.01 {
		t.Errorf("final b = %g, want %g", got, want)
	}
}

func TestTransientRampSource(t *testing.T) {
	n := NewNetwork()
	n.AddCap("a", 10)
	if err := n.AddRamp("a", 100, 0, 2, 100); err != nil {
		t.Fatal(err)
	}
	res, err := n.Transient(nil, 400, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Final("a"); math.Abs(f-2) > 0.02 {
		t.Errorf("final = %g, want ≈2", f)
	}
	// Mid-ramp the node lags the ramp but is clearly above 0.
	mid := res.CrossingPS("a", 1.0)
	if math.IsNaN(mid) || mid < 50 {
		t.Errorf("1V crossing = %g ps, want after 50 ps", mid)
	}
}

func TestTransientErrors(t *testing.T) {
	n := NewNetwork()
	n.AddCap("a", 1)
	if _, err := n.Transient(nil, 0, 1); err == nil {
		t.Error("zero duration should fail")
	}
	if err := n.AddRes("a", "b", 0); err == nil {
		t.Error("zero resistance should fail")
	}
	if err := n.AddStep("a", 0, 0, 1); err == nil {
		t.Error("zero source resistance should fail")
	}
	if err := n.AddRamp("a", 10, 0, 1, 0); err == nil {
		t.Error("zero rise time should fail")
	}
}

func TestDistributedGateFigure5(t *testing.T) {
	// The paper's Figure 5 claim: the simple lumped model underestimates
	// the real (distributed, input-skewed) delay.
	g := &DistributedGate{
		Fingers:     8,
		RdrvTotal:   300,
		InRes:       1500,
		InCap:       120,
		RinDrv:      800,
		CgPerFinger: 15,
		OutRes:      1200,
		OutCap:      180,
		CLoad:       120,
		Vdd:         3.45,
	}
	lumped, distributed, errPS, err := g.ModelErrorPS()
	if err != nil {
		t.Fatal(err)
	}
	if lumped <= 0 || distributed <= 0 {
		t.Fatalf("degenerate delays: %g / %g", lumped, distributed)
	}
	if errPS <= 0 {
		t.Errorf("distributed (%g ps) should exceed lumped (%g ps)", distributed, lumped)
	}
}

func TestDistributedGateErrorGrowsWithInputRC(t *testing.T) {
	base := DistributedGate{
		Fingers: 6, RdrvTotal: 300, InRes: 500, InCap: 60, RinDrv: 600,
		CgPerFinger: 12, OutRes: 800, OutCap: 120, CLoad: 80, Vdd: 3.3,
	}
	small := base
	big := base
	big.InRes, big.InCap = 4000, 300
	_, _, errSmall, err := small.ModelErrorPS()
	if err != nil {
		t.Fatal(err)
	}
	_, _, errBig, err := big.ModelErrorPS()
	if err != nil {
		t.Fatal(err)
	}
	if errBig <= errSmall {
		t.Errorf("model error should grow with input grid RC: %g vs %g", errSmall, errBig)
	}
}

func TestDistributedGateValidate(t *testing.T) {
	bad := []DistributedGate{
		{Fingers: 0, RdrvTotal: 1, RinDrv: 1, Vdd: 1},
		{Fingers: 1, RdrvTotal: 0, RinDrv: 1, Vdd: 1},
		{Fingers: 1, RdrvTotal: 1, RinDrv: 1, Vdd: 0},
		{Fingers: 1, RdrvTotal: 1, RinDrv: 1, Vdd: 1, CLoad: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid gate accepted", i)
		}
	}
}

// must is a test helper for builder errors.
func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
