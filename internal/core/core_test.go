package core

import (
	"strings"
	"testing"

	"repro/internal/checks"
	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
	"repro/internal/timing"
)

func opts() Options {
	return Options{Proc: process.CMOS075()}
}

func TestVerifyCleanStaticDesign(t *testing.T) {
	rep, err := Verify(designs.InverterChain(10), opts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict == checks.Violation {
		t.Errorf("clean chain got violation verdict:\n%s", rep.Summary())
	}
	if len(rep.Timing.Races) != 0 {
		t.Error("combinational chain cannot race")
	}
	s := rep.Summary()
	for _, want := range []string{"CBV report", "recognition:", "checks:", "timing:"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestVerifyDominoAdder(t *testing.T) {
	rep, err := Verify(designs.DominoAdder(8), opts())
	if err != nil {
		t.Fatal(err)
	}
	// CBV handles the dynamic design: recognition names every group,
	// and the verdict is not driven by unknowns.
	if got := len(rep.Recognition.GroupsByFamily(recognize.FamilyUnknown)); got != 0 {
		t.Errorf("unknown groups = %d; %s", got, rep.Recognition.Summary())
	}
	if got := len(rep.Recognition.GroupsByFamily(recognize.FamilyDynamic)); got != 8 {
		t.Errorf("dynamic groups = %d, want 8", got)
	}
}

func TestVerifyFlagsRace(t *testing.T) {
	rep, err := Verify(designs.LatchPipeline(4, true), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timing.Races) == 0 {
		t.Fatal("racy pipeline not flagged")
	}
	if rep.Verdict != checks.Violation {
		t.Errorf("verdict = %v, want violation", rep.Verdict)
	}
	clean, err := Verify(designs.LatchPipeline(4, false), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Timing.Races) != 0 {
		t.Error("clean two-phase pipeline flagged as racing")
	}
}

func TestVerifyRequiresProcess(t *testing.T) {
	if _, err := Verify(designs.InverterChain(2), Options{}); err == nil {
		t.Error("missing process accepted")
	}
}

func TestInspectLoadCountsNonPass(t *testing.T) {
	// A skewed inverter generates at least one non-pass finding.
	c := netlist.New("skew")
	c.DeclarePort("y")
	designs.AddInverter(c, "u", "a", "y", 20, 1)
	rep, err := Verify(c, opts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.InspectLoad == 0 {
		t.Error("skewed sizing should cost inspection effort")
	}
}

func TestCBCAcceptsLibraryStyle(t *testing.T) {
	rep, err := CheckCBC(designs.InverterChain(6), process.CMOS075())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepts() {
		t.Errorf("plain inverters rejected by CBC: %+v", rep.Rejections)
	}
	if rep.Accepted != 6 {
		t.Errorf("accepted = %d", rep.Accepted)
	}
}

func TestCBCRejectsFullCustomStyles(t *testing.T) {
	// The paper's core argument: CBC refuses what full-custom needs.
	cases := []struct {
		name string
		c    *netlist.Circuit
		want string
	}{
		{"domino", designs.DominoAdder(2), "dynamic"},
		{"passmux", designs.PassMux(4), "pass-transistor"},
	}
	for _, cse := range cases {
		rep, err := CheckCBC(cse.c, process.CMOS075())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Accepts() {
			t.Errorf("%s: CBC accepted a non-library design", cse.name)
			continue
		}
		found := false
		for _, r := range rep.Rejections {
			if strings.Contains(r.Reason, cse.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no rejection mentioning %q: %+v", cse.name, cse.want, rep.Rejections)
		}
	}
}

func TestCBCRejectsOversizedFanIn(t *testing.T) {
	// A legal 6-input complementary gate exceeds the library fan-in.
	c := netlist.New("and6ish")
	c.DeclarePort("y")
	prev := "y"
	for i := 0; i < 6; i++ {
		next := "m" + string(rune('0'+i))
		if i == 5 {
			next = "vss"
		}
		c.NMOS("n"+string(rune('0'+i)), "in"+string(rune('0'+i)), next, prev, 4, 0.75)
		prev = next
	}
	for i := 0; i < 6; i++ {
		c.PMOS("p"+string(rune('0'+i)), "in"+string(rune('0'+i)), "vdd", "y", 6, 0.75)
	}
	rep, err := CheckCBC(c, process.CMOS075())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepts() {
		t.Error("6-input gate should exceed the CBC library fan-in limit")
	}
}

func TestCompareMethodologies(t *testing.T) {
	// The ablation's shape: on the domino adder, CBV produces a
	// verdict with finite inspection load while CBC simply refuses.
	cmp, err := CompareMethodologies(designs.DominoAdder(4), opts())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CBCAccepts {
		t.Error("CBC accepted domino logic")
	}
	if cmp.CBCRejected == 0 {
		t.Error("no CBC rejections counted")
	}
	if cmp.CBVVerdict == checks.Violation {
		t.Errorf("CBV should verify the working domino adder, got %v", cmp.CBVVerdict)
	}

	// And on library-style logic both methods agree.
	cmp2, err := CompareMethodologies(designs.InverterChain(4), opts())
	if err != nil {
		t.Fatal(err)
	}
	if !cmp2.CBCAccepts {
		t.Error("CBC rejected plain inverters")
	}
}

func TestReportCarriesResolvedClock(t *testing.T) {
	// Defaulted clock: the report must expose the spec actually used,
	// not the zero value the caller passed (cache keys depend on it).
	opt := opts()
	rep, err := Verify(designs.InverterChain(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	want := timing.TwoPhase(1e6 / opt.Proc.ClockFreqMHz)
	if rep.Clock.PeriodPS != want.PeriodPS || len(rep.Clock.Phases) != len(want.Phases) {
		t.Errorf("defaulted Report.Clock = %+v, want %+v", rep.Clock, want)
	}
	if got := opt.ResolvedClock(); got.PeriodPS != want.PeriodPS {
		t.Errorf("ResolvedClock() period = %v, want %v", got.PeriodPS, want.PeriodPS)
	}

	// Explicit clock: passed through untouched, and the caller's Options
	// copy is not mutated either way.
	opt2 := opts()
	opt2.Clock = timing.SinglePhase(1234)
	rep2, err := Verify(designs.InverterChain(4), opt2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Clock.PeriodPS != 1234 {
		t.Errorf("explicit Report.Clock period = %v, want 1234", rep2.Clock.PeriodPS)
	}
	if opt2.Clock.PeriodPS != 1234 {
		t.Errorf("caller's Options mutated: %+v", opt2.Clock)
	}
}
