package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/checks"
	"repro/internal/designs"
	"repro/internal/lint"
	"repro/internal/netlist"
)

// brokenCell builds a circuit with a floating gate — an error-severity
// lint finding — that recognition alone happily accepts.
func brokenCell() *netlist.Circuit {
	c := netlist.New("broken")
	c.DeclarePort("a")
	c.DeclarePort("y")
	c.NMOS("mn", "ghost", "vss", "y", 2, 0.75)
	c.PMOS("mp", "a", "vdd", "y", 4, 0.75)
	return c
}

func TestVerifyLintGateBlocksErrors(t *testing.T) {
	c := brokenCell()
	// Without the gate, verification proceeds.
	if _, err := Verify(c, opts()); err != nil {
		t.Fatalf("ungated Verify failed: %v", err)
	}
	opt := opts()
	opt.Lint = true
	_, err := Verify(c, opt)
	var gate *LintGateError
	if !errors.As(err, &gate) {
		t.Fatalf("gated Verify = %v, want *LintGateError", err)
	}
	if gate.Design != "broken" || !gate.Report.HasErrors() {
		t.Errorf("gate = %+v", gate)
	}
	if !strings.Contains(gate.Error(), "lint gate") {
		t.Errorf("gate message = %q", gate.Error())
	}
}

func TestVerifyLintGateHonorsWaivers(t *testing.T) {
	w, err := lint.ParseWaivers(strings.NewReader("FCV001 broken ghost intentional for test\n"))
	if err != nil {
		t.Fatal(err)
	}
	opt := opts()
	opt.Lint = true
	opt.LintOptions.Waivers = w
	rep, err := Verify(brokenCell(), opt)
	if err != nil {
		t.Fatalf("waived Verify = %v, want success", err)
	}
	if rep.Lint == nil || rep.Lint.HasErrors() {
		t.Errorf("lint report not attached or still erroring: %+v", rep.Lint)
	}
	if !strings.Contains(rep.Summary(), "lint:") {
		t.Errorf("summary missing lint line:\n%s", rep.Summary())
	}
}

func TestVerifyLintWarningsRaiseInspectLoad(t *testing.T) {
	// A dangling-terminal warning survives the gate but must show up as
	// designer inspection work.
	c := netlist.New("warned")
	c.DeclarePort("a")
	c.DeclarePort("y")
	designs.AddInverter(c, "i", "a", "y", 2, 4)
	c.NMOS("mdg", "a", "vss", "stub", 2, 0.75)

	base := opts()
	ungated, err := Verify(c, base)
	if err != nil {
		t.Fatal(err)
	}
	gatedOpt := opts()
	gatedOpt.Lint = true
	gated, err := Verify(c, gatedOpt)
	if err != nil {
		t.Fatalf("warn-only circuit tripped the gate: %v", err)
	}
	if gated.InspectLoad <= ungated.InspectLoad {
		t.Errorf("inspect load %d not raised above ungated %d by lint warning",
			gated.InspectLoad, ungated.InspectLoad)
	}
	if gated.Verdict < checks.Inspect {
		t.Errorf("verdict = %v, want at least Inspect", gated.Verdict)
	}
	if gated.Lint == nil {
		t.Error("lint report not attached")
	}
}
