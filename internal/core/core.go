// Package core is the Correct-by-Verification (CBV) engine — the
// paper's primary methodological contribution.
//
// §2: "Digital Semiconductor's design methodology follows a Correct by
// verification (CBV) instead of the more popular Correct by construction
// (CBC) methods. CBV better addresses the key electrical issues involved
// with high-performance designs, while CBC may still be adequate for
// non-critical designs."
//
// The CBV engine accepts ANY transistor arrangement and verifies it:
// recognition deduces the meaning, the §4.2 check battery filters the
// electrical hazards, the timing verifier bounds delays and hunts races,
// and the verdicts are merged into a single filtered report
// (Pass/Inspect/Violation with margins).
//
// For the ablation experiment the package also implements a CBC checker:
// a library-rule gatekeeper that only admits structures matching its
// known-cell patterns. Running both over the same full-custom designs
// shows CBC rejecting legal, working DCVSL/domino/pass-gate structures
// that CBV verifies — the paper's argument, measured.
package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/checks"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/process"
	"repro/internal/recognize"
	"repro/internal/timing"
)

// Options configures a CBV run.
type Options struct {
	// Proc is the process model (required).
	Proc *process.Process
	// Clock is the clocking methodology; zero value uses a two-phase
	// clock at the process's nominal frequency.
	Clock timing.ClockSpec
	// Checks forwards extraction data to the §4.2 battery.
	Couplings     []checks.Coupling
	AntennaRatios map[string]float64
	// CouplingPessimism forwards to the timing verifier.
	CouplingPessimism float64
	// Lint enables the static pre-verification gate: the lint rule set
	// runs before the electrical battery, its report is attached to the
	// Report, and unwaived error-severity findings abort verification
	// with a *LintGateError — a structurally broken circuit would only
	// produce meaningless electrical and timing numbers.
	Lint bool
	// LintOptions configures the gate (waivers, fanout ceiling, …).
	LintOptions lint.Options
	// Trace, when non-nil, is the parent span under which Verify opens
	// one child span per pipeline stage (recognize, lint, checks,
	// timing) and bumps counters on the owning collector. Telemetry
	// never changes a verification outcome, so it is deliberately
	// excluded from cache configuration keys.
	Trace *obs.Span
	// Events, when non-nil, receives stage-start/stage-end events for
	// the live JSONL stream. Like Trace, events never change outcomes
	// and are excluded from cache keys.
	Events *obs.EventScope
	// PprofLabels tags the running goroutine with an fcv_stage pprof
	// label for the duration of each stage, so CPU profiles attribute
	// samples to pipeline stages.
	PprofLabels bool
}

// stage runs one pipeline stage under its span (and, when enabled, its
// pprof label). The span and label cost nothing when telemetry is off:
// a nil Trace yields nil children whose End is a no-op.
func (o *Options) stage(name string, fn func()) {
	sp := o.Trace.Child(name)
	o.Events.Emit(obs.Event{Type: "stage-start", Stage: name})
	if o.PprofLabels {
		pprof.Do(context.Background(), pprof.Labels("fcv_stage", name), func(context.Context) { fn() })
	} else {
		fn()
	}
	sp.End()
	o.Trace.Collector().Observe("stage."+name+"_ms", float64(sp.Duration().Microseconds())/1000)
	o.Events.Emit(obs.Event{Type: "stage-end", Stage: name})
}

// ResolvedClock returns the clock spec Verify will actually analyze
// with: the configured one, or the process-default two-phase clock when
// the zero value was left in place. Cache keys and reports must use
// this, not Options.Clock, or two runs differing only in whether the
// default was spelled out would disagree.
func (o *Options) ResolvedClock() timing.ClockSpec {
	if o.Clock.PeriodPS == 0 && o.Proc != nil {
		return timing.TwoPhase(1e6 / o.Proc.ClockFreqMHz)
	}
	return o.Clock
}

// LintGateError is returned by Verify when the opt-in lint gate finds
// error-severity structural defects. It carries the full report so
// callers can render or waive the findings.
type LintGateError struct {
	// Design is the rejected circuit's name.
	Design string
	// Report is the lint result that tripped the gate.
	Report *lint.Report
}

// Error summarizes the gate failure.
func (e *LintGateError) Error() string {
	errs, warns, _ := e.Report.Counts()
	return fmt.Sprintf("core: lint gate: %s has %d error-severity finding(s) (%d warning(s)); fix or waive them before verification",
		e.Design, errs, warns)
}

// Report is the merged CBV result for one design.
type Report struct {
	// Design is the verified circuit's name.
	Design string
	// Recognition is the deduced structure.
	Recognition *recognize.Result
	// Checks is the electrical battery result.
	Checks *checks.Report
	// Timing is the race/critical-path analysis.
	Timing *timing.Report
	// Clock is the clock spec the analysis actually used — the resolved
	// default when Options.Clock was left zero. Callers keying caches on
	// verification configuration must read this, not their own copy of
	// the options (see Options.ResolvedClock).
	Clock timing.ClockSpec
	// Verdict is the overall classification: the worst of all findings
	// plus timing violations.
	Verdict checks.Verdict
	// InspectLoad counts the findings a designer must look at — the
	// methodology's cost metric (§4.3: "As the number of false
	// violations goes up, the productivity of the designer goes down").
	InspectLoad int
	// Lint is the static-analysis report when the Options.Lint gate was
	// enabled (nil otherwise). Unwaived warnings count toward
	// InspectLoad; errors never reach here (Verify aborts).
	Lint *lint.Report
}

// Verify runs the full CBV pipeline on a flat circuit.
func Verify(c *netlist.Circuit, opt Options) (*Report, error) {
	if opt.Proc == nil {
		return nil, fmt.Errorf("core: missing process model")
	}
	opt.Clock = opt.ResolvedClock()
	opt.Trace.Collector().Add("core.verify_runs", 1)
	var rec *recognize.Result
	var err error
	opt.stage("recognize", func() {
		rec, err = recognize.Analyze(c)
	})
	if err != nil {
		return nil, err
	}
	var lintRep *lint.Report
	if opt.Lint {
		opt.stage("lint", func() {
			lintRep = lint.RunRecognized(rec, opt.LintOptions)
		})
		if lintRep.HasErrors() {
			return nil, &LintGateError{Design: c.Name, Report: lintRep}
		}
	}
	var chk *checks.Report
	opt.stage("checks", func() {
		chk, err = checks.RunAll(rec, checks.Options{
			Proc:          opt.Proc,
			PeriodPS:      opt.Clock.PeriodPS,
			Couplings:     opt.Couplings,
			AntennaRatios: opt.AntennaRatios,
		})
	})
	if err != nil {
		return nil, err
	}
	var tim *timing.Report
	opt.stage("timing", func() {
		tim, err = timing.Analyze(rec, timing.Options{
			Proc:              opt.Proc,
			Clock:             opt.Clock,
			CouplingPessimism: opt.CouplingPessimism,
		})
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Design:      c.Name,
		Recognition: rec,
		Checks:      chk,
		Timing:      tim,
		Clock:       opt.Clock,
		Verdict:     checks.Pass,
		Lint:        lintRep,
	}
	bump := func(v checks.Verdict) {
		if v > rep.Verdict {
			rep.Verdict = v
		}
	}
	if lintRep != nil {
		// Surviving lint warnings are designer-judgement items, exactly
		// the Inspect bucket of the filtering philosophy.
		_, warns, _ := lintRep.Counts()
		if warns > 0 {
			bump(checks.Inspect)
			rep.InspectLoad += warns
		}
	}
	for _, f := range chk.Findings {
		bump(f.Verdict)
		if f.Verdict != checks.Pass {
			rep.InspectLoad++
		}
	}
	// Unrecognized groups are CBV's "might have a problem" bucket.
	for range rec.GroupsByFamily(recognize.FamilyUnknown) {
		bump(checks.Inspect)
		rep.InspectLoad++
	}
	for _, p := range tim.Paths {
		if p.SetupSlack < 0 {
			bump(checks.Violation)
			rep.InspectLoad++
		}
	}
	for range tim.Races {
		bump(checks.Violation)
		rep.InspectLoad++
	}
	return rep, nil
}

// Findings assembles the report's non-pass outcomes as provenanced
// manifest findings, in deterministic order: surviving lint warnings
// (report order), then check inspects/violations (battery order), then
// timing setup violations and races (slack order). Each carries the
// producer's stable rename-invariant ID, so two runs of the same
// structure yield the same finding set and `fcv diff` can track
// findings across renames and reorderings.
func (r *Report) Findings() []obs.Finding {
	out := LintFindings(r.Lint)
	if r.Checks != nil {
		for _, f := range r.Checks.Findings {
			if f.Verdict == checks.Pass {
				continue
			}
			out = append(out, obs.Finding{
				ID:       f.ID,
				Source:   "check",
				Check:    f.Check,
				Subject:  f.Subject,
				Severity: f.Verdict.String(),
				Margin:   f.Margin,
				Detail:   f.Detail,
				Evidence: obs.Evidence{
					Devices:   f.Evidence.Devices,
					Nets:      f.Evidence.Nets,
					Context:   f.Evidence.Context,
					Measured:  f.Evidence.Measured,
					Threshold: f.Evidence.Threshold,
					Unit:      f.Evidence.Unit,
				},
			})
		}
	}
	if r.Timing != nil {
		for _, p := range r.Timing.Paths {
			if p.SetupSlack >= 0 {
				continue
			}
			out = append(out, timingFinding(r.Timing, &p, "setup"))
		}
		for _, p := range r.Timing.Races {
			out = append(out, timingFinding(r.Timing, &p, "hold"))
		}
	}
	return out
}

// LintFindings converts a lint report's unwaived, non-info diagnostics
// into manifest findings under their stable lint rule IDs. A nil report
// yields nil. Shared by Report.Findings (surviving warnings on a
// verified design) and the fleet (the gate's own diagnostics when it
// aborts verification).
func LintFindings(rep *lint.Report) []obs.Finding {
	if rep == nil {
		return nil
	}
	var out []obs.Finding
	for _, d := range rep.Diags {
		if d.Waived || d.Severity == lint.Info {
			continue
		}
		out = append(out, obs.Finding{
			ID:       d.ID,
			Source:   "lint",
			Check:    d.Rule,
			Subject:  d.Subject,
			Severity: d.Severity.String(),
			Detail:   d.Message,
			Evidence: obs.Evidence{
				Nets:    []string{d.Subject},
				Context: "cell " + d.Cell,
				Unit:    "rule",
			},
		})
	}
	return out
}

// timingFinding converts one failing path check into a manifest finding.
func timingFinding(rep *timing.Report, p *timing.Path, kind string) obs.Finding {
	endpoint := rep.Circuit.NodeName(p.Endpoint)
	f := obs.Finding{
		Source:   "timing",
		Check:    kind,
		Subject:  endpoint,
		Severity: "violation",
		Evidence: obs.Evidence{Unit: "ps"},
	}
	route := p.NodesMax
	if kind == "setup" {
		f.ID = p.SetupID
		f.Margin = p.SetupSlack
		f.Detail = fmt.Sprintf("setup slack %.0f ps at %s", p.SetupSlack, endpoint)
		f.Evidence.Measured = p.Arrival.Max
		f.Evidence.Threshold = p.RequiredMax
	} else {
		f.ID = p.HoldID
		f.Margin = p.HoldSlack
		f.Detail = fmt.Sprintf("hold slack %.0f ps at %s (race)", p.HoldSlack, endpoint)
		f.Evidence.Measured = p.Arrival.Min
		f.Evidence.Threshold = p.RequiredMin
		route = p.NodesMin
	}
	for i, id := range route {
		if i >= 8 {
			break
		}
		f.Evidence.Nets = append(f.Evidence.Nets, rep.Circuit.NodeName(id))
	}
	if p.CaptureClock != "" {
		f.Evidence.Context = "captured by " + p.CaptureClock
	} else {
		f.Evidence.Context = "primary output"
	}
	return f
}

// Summary renders the merged report.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CBV report for %s: verdict=%s inspect-load=%d\n", r.Design, r.Verdict, r.InspectLoad)
	if r.Lint != nil {
		le, lw, li := r.Lint.Counts()
		fmt.Fprintf(&sb, "  lint: %d error(s), %d warning(s), %d info(s)\n", le, lw, li)
	}
	fmt.Fprintf(&sb, "  recognition: %s\n", r.Recognition.Summary())
	p, i, v := r.Checks.Counts()
	fmt.Fprintf(&sb, "  checks: pass=%d inspect=%d violation=%d (filter %.0f%%)\n",
		p, i, v, r.Checks.FilterEffectiveness()*100)
	fmt.Fprintf(&sb, "  timing: %d endpoints, %d races, min period %.0f ps\n",
		len(r.Timing.Paths), len(r.Timing.Races), r.Timing.MinPeriodPS)
	return sb.String()
}

// ------------------------- CBC comparator --------------------------

// CBCRejection explains why the constructive checker refused a group.
type CBCRejection struct {
	Group  int
	Family recognize.Family
	Reason string
}

// CBCReport is the library-rule gatekeeper's verdict.
type CBCReport struct {
	Design     string
	Accepted   int
	Rejections []CBCRejection
}

// Accepts reports whether CBC admitted the whole design.
func (r *CBCReport) Accepts() bool { return len(r.Rejections) == 0 }

// CheckCBC applies "correct by construction" library rules: only
// structures matching the known-safe cell patterns are admitted —
// static complementary gates with bounded fan-in and conventional
// P:N sizing, and nothing else. This is deliberately the methodology
// the paper argues against for high-performance work: it guarantees
// what it accepts but cannot accept what full-custom designers build.
func CheckCBC(c *netlist.Circuit, proc *process.Process) (*CBCReport, error) {
	rec, err := recognize.Analyze(c)
	if err != nil {
		return nil, err
	}
	rep := &CBCReport{Design: c.Name}
	const maxFanIn = 4
	for _, g := range rec.Groups {
		reject := func(reason string) {
			rep.Rejections = append(rep.Rejections, CBCRejection{
				Group:  g.Index,
				Family: g.Family,
				Reason: reason,
			})
		}
		switch g.Family {
		case recognize.FamilyStaticCMOS:
			if len(g.Inputs) > maxFanIn {
				reject(fmt.Sprintf("fan-in %d exceeds library limit %d", len(g.Inputs), maxFanIn))
				continue
			}
			// Library sizing rule: every PMOS within 1–4× of every NMOS.
			minN, maxP := 1e18, 0.0
			for _, d := range g.Devices {
				wl := d.W / d.Leff()
				if d.Type == process.NMOS && wl < minN {
					minN = wl
				}
				if d.Type == process.PMOS && wl > maxP {
					maxP = wl
				}
			}
			if maxP > 4*minN {
				reject("device sizing outside library ratio rules")
				continue
			}
			rep.Accepted++
		case recognize.FamilyDynamic:
			reject("dynamic logic not in cell library")
		case recognize.FamilyDCVSL:
			reject("DCVSL not in cell library")
		case recognize.FamilyPassTransistor:
			reject("pass-transistor structures not in cell library")
		case recognize.FamilyRatioed:
			reject("ratioed logic not in cell library")
		default:
			reject("unrecognizable structure")
		}
	}
	sort.Slice(rep.Rejections, func(i, j int) bool {
		return rep.Rejections[i].Group < rep.Rejections[j].Group
	})
	return rep, nil
}

// MethodologyComparison is the CBV-vs-CBC ablation row for one design.
type MethodologyComparison struct {
	Design string
	// CBVVerdict is the verification outcome.
	CBVVerdict checks.Verdict
	// CBVInspectLoad is the designer effort CBV asks for.
	CBVInspectLoad int
	// CBCAccepts is whether the constructive rules admit the design.
	CBCAccepts bool
	// CBCRejected counts refused groups.
	CBCRejected int
}

// CompareMethodologies runs both engines over one design.
func CompareMethodologies(c *netlist.Circuit, opt Options) (*MethodologyComparison, error) {
	cbv, err := Verify(c, opt)
	if err != nil {
		return nil, err
	}
	cbc, err := CheckCBC(c, opt.Proc)
	if err != nil {
		return nil, err
	}
	return &MethodologyComparison{
		Design:         c.Name,
		CBVVerdict:     cbv.Verdict,
		CBVInspectLoad: cbv.InspectLoad,
		CBCAccepts:     cbc.Accepts(),
		CBCRejected:    len(cbc.Rejections),
	}, nil
}
