package recognize_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/recognize"
)

// BenchmarkAnalyzeKernel measures full recognition — CCC extraction,
// conduction-function derivation, family classification and latch
// finding — over the domino adder, the corpus shape with the richest
// mix of group kinds.
func BenchmarkAnalyzeKernel(b *testing.B) {
	c := designs.DominoAdder(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recognize.Analyze(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildGroupsKernel isolates CCC extraction (the union-find
// partition plus input/output classification) on a large array — the
// first thing every verification stage pays for.
func BenchmarkBuildGroupsKernel(b *testing.B) {
	c := designs.SRAMArray(32, 16, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recognize.Analyze(c); err != nil {
			b.Fatal(err)
		}
	}
}
