package recognize

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/process"
)

// classify assigns a logic family to the group from the shape of its
// deduced conduction functions and its structure. The tests are ordered
// from most specific to most general; anything that matches nothing is
// FamilyUnknown, which the CBV flow reports rather than trusts.
func (g *Group) classify(c *netlist.Circuit, clocks map[netlist.NodeID]bool) {
	if len(g.Funcs) == 0 {
		g.Family = FamilyUnknown
		return
	}
	g.ClockNets = g.clockGates(c, clocks)

	switch {
	case g.isDynamic(c, clocks):
		g.Family = FamilyDynamic
		// A keeper's fight with the evaluate tree blocks the generic
		// functional abstraction (CanFight); once the group is known to
		// be dynamic, the designed behaviour is the evaluate-phase
		// pull-down complement, keeper excluded.
		for _, f := range g.Funcs {
			if f.Function != nil {
				continue
			}
			eval := f.PullDown
			for ck := range clocks {
				eval = logic.Substitute(eval, c.NodeName(ck), logic.True)
			}
			f.Function = logic.Not(eval)
		}
	case g.isPassTransistor(c):
		g.Family = FamilyPassTransistor
	case g.isRatioed(c):
		g.Family = FamilyRatioed
	case g.isStaticCMOS(c):
		g.Family = FamilyStaticCMOS
	default:
		g.Family = FamilyUnknown
	}
}

// clockGates returns the clock nets gating any device of the group.
func (g *Group) clockGates(c *netlist.Circuit, clocks map[netlist.NodeID]bool) []netlist.NodeID {
	set := make(map[netlist.NodeID]bool)
	for _, d := range g.Devices {
		if clocks[d.Gate] {
			set[d.Gate] = true
		}
	}
	return sortedNodeSet(set)
}

// isStaticCMOS: every output is complementary (always driven, never
// fighting), pull-ups are PMOS-only and pull-downs NMOS-only.
func (g *Group) isStaticCMOS(c *netlist.Circuit) bool {
	for _, f := range g.Funcs {
		if !f.Complementary {
			return false
		}
	}
	// Structure check: no NMOS touches vdd, no PMOS touches vss.
	for _, d := range g.Devices {
		touchesVdd := c.IsVdd(d.Source) || c.IsVdd(d.Drain)
		touchesVss := c.IsVss(d.Source) || c.IsVss(d.Drain)
		if d.Type == process.NMOS && touchesVdd {
			return false
		}
		if d.Type == process.PMOS && touchesVss {
			return false
		}
	}
	return true
}

// isRatioed: some output's pull-up (or pull-down) network is permanently
// conducting — a grounded-gate PMOS load or equivalent — so the output
// level is set by a fight the designer sized to win (pseudo-NMOS).
func (g *Group) isRatioed(c *netlist.Circuit) bool {
	for _, f := range g.Funcs {
		upAlways := logic.Tautology(f.PullUp)
		downAlways := logic.Tautology(f.PullDown)
		if (upAlways && !downAlways && logic.Satisfiable(f.PullDown)) ||
			(downAlways && !upAlways && logic.Satisfiable(f.PullUp)) {
			return true
		}
	}
	return false
}

// isDynamic: a precharge-evaluate structure. The output has a clocked
// precharge PMOS from vdd, its pull-down (during evaluate) depends on
// data, and the node is not complementary (it is not a static gate that
// happens to take a clock input). Keepers — extra PMOS pull-ups gated by
// feedback — are permitted; they do not make the gate static (§4.2,
// Figure 3).
func (g *Group) isDynamic(c *netlist.Circuit, clocks map[netlist.NodeID]bool) bool {
	if len(g.ClockNets) == 0 {
		return false
	}
	clockNames := make(map[string]bool, len(clocks))
	for ck := range clocks {
		clockNames[c.NodeName(ck)] = true
	}
	dynamic := false
	for _, f := range g.Funcs {
		if f.Complementary {
			continue // a static gate, whatever its inputs are named
		}
		// Precharge device: clocked PMOS from vdd onto this output.
		hasPrecharge := false
		for _, d := range g.Devices {
			if d.Type == process.PMOS && clocks[d.Gate] &&
				(c.IsVdd(d.Source) || c.IsVdd(d.Drain)) &&
				(d.Source == f.Node || d.Drain == f.Node) {
				hasPrecharge = true
				break
			}
		}
		if !hasPrecharge {
			continue
		}
		// Evaluate-phase pull-down must depend on data (not just the
		// clocks themselves).
		down := f.PullDown
		for ck := range clocks {
			down = logic.Substitute(down, c.NodeName(ck), logic.True)
		}
		if len(logic.Vars(down)) == 0 {
			continue
		}
		dynamic = true
		// Footed: with all clocks low, the pull-down is off no matter
		// the data (every evaluate path has a clocked foot).
		off := f.PullDown
		for ck := range clocks {
			off = logic.Substitute(off, c.NodeName(ck), logic.False)
		}
		g.Footed = !logic.Satisfiable(off)
	}
	return dynamic
}

// pairDCVSL upgrades pairs of groups to FamilyDCVSL. The two halves of a
// differential cascode voltage switch gate are *separate* CCCs — the
// cross-coupling runs through gate terminals, which are CCC boundaries —
// so DCVSL cannot be recognized group-locally. A pair (g1, g2) with
// single outputs (q, qn) is DCVSL when every pull-up path of q is a PMOS
// from vdd gated by qn and vice versa, and both pull-down trees are
// NMOS networks driven purely by data.
//
// The pull-down trees of real DCVSL are complementary *given* that the
// dual-rail inputs are complementary, but the recognizer sees the true
// and complement input rails as independent nets and cannot assume that
// relation, so functional complementarity is not checked here — it is
// exactly the kind of residual question the CBV flow routes to the
// equivalence checker.
func (r *Result) pairDCVSL() {
	c := r.Circuit
	for _, g1 := range r.Groups {
		if g1.Family != FamilyUnknown || len(g1.Outputs) != 1 {
			continue
		}
		o1 := g1.Outputs[0]
		o2 := dcvslPartner(c, g1)
		if o2 == netlist.InvalidNode {
			continue
		}
		gi2, ok := r.DriverOf[o2]
		if !ok {
			continue
		}
		g2 := r.Groups[gi2]
		if g2.Family != FamilyUnknown || len(g2.Outputs) != 1 || g2.Outputs[0] != o2 {
			continue
		}
		if dcvslPartner(c, g2) != o1 {
			continue
		}
		if !dataOnlyPullDown(c, g1, o1, o2) || !dataOnlyPullDown(c, g2, o1, o2) {
			continue
		}
		g1.Family = FamilyDCVSL
		g2.Family = FamilyDCVSL
	}
}

// dcvslPartner returns the single net gating all of the group's pull-up
// PMOS devices from vdd onto its output, provided the group's pull-ups
// consist only of such devices and its remaining devices are NMOS. It
// returns InvalidNode if the structure does not match.
func dcvslPartner(c *netlist.Circuit, g *Group) netlist.NodeID {
	out := g.Outputs[0]
	partner := netlist.InvalidNode
	for _, d := range g.Devices {
		if d.Type == process.NMOS {
			if c.IsVdd(d.Source) || c.IsVdd(d.Drain) {
				return netlist.InvalidNode
			}
			continue
		}
		// Every PMOS must be a vdd→out pull-up with a consistent gate.
		onOut := d.Source == out || d.Drain == out
		onVdd := c.IsVdd(d.Source) || c.IsVdd(d.Drain)
		if !onOut || !onVdd {
			return netlist.InvalidNode
		}
		if partner != netlist.InvalidNode && partner != d.Gate {
			return netlist.InvalidNode
		}
		partner = d.Gate
	}
	return partner
}

// dataOnlyPullDown reports that the group's pull-down function exists and
// mentions neither output of the candidate DCVSL pair.
func dataOnlyPullDown(c *netlist.Circuit, g *Group, o1, o2 netlist.NodeID) bool {
	f := g.Func(g.Outputs[0])
	if f == nil {
		return false
	}
	vars := logic.Vars(f.PullDown)
	if len(vars) == 0 {
		return false
	}
	n1, n2 := c.NodeName(o1), c.NodeName(o2)
	for _, v := range vars {
		if v == n1 || v == n2 {
			return false
		}
	}
	return true
}

// isPassTransistor: the group routes an external signal through device
// channels — it has a channel input, or it contains a source/drain path
// between two externally visible non-rail nodes with no rail involvement
// (a transmission-gate/steering structure).
func (g *Group) isPassTransistor(c *netlist.Circuit) bool {
	if len(g.ChannelInputs) > 0 {
		// A structure that also has rail pull networks (e.g. a tri-state
		// driver on a bus port) is not pure pass logic; require that at
		// least one device channel-connects two non-rail external nodes.
		for _, d := range g.Devices {
			sExt, dExt := g.isExternal(d.Source), g.isExternal(d.Drain)
			if sExt && dExt {
				return true
			}
		}
	}
	return false
}

// isExternal reports whether id is one of the group's output or
// channel-input nodes.
func (g *Group) isExternal(id netlist.NodeID) bool {
	for _, o := range g.Outputs {
		if o == id {
			return true
		}
	}
	return false
}
