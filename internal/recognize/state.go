package recognize

import (
	"sort"

	"repro/internal/netlist"
)

// findLatches detects state elements as feedback cycles in the group
// connectivity graph (an edge g→h exists when an output of g is read as
// a gate by h). §4.3: constraint generation hinges on the "automatic
// recognition of state-elements … for any full custom circuit" because
// designers create state elements on the fly. A strongly connected
// component with a cycle is a storage loop; its character (static keeper
// vs. clocked latch) comes from the member groups' families and clocks.
func (r *Result) findLatches() {
	n := len(r.Groups)
	if n == 0 {
		return
	}
	// adj[g] = groups whose gates read an output of g.
	adj := make([][]int, n)
	gateReaders := make(map[netlist.NodeID][]int)
	for gi, g := range r.Groups {
		for _, in := range g.Inputs {
			gateReaders[in] = append(gateReaders[in], gi)
		}
		// Self-feedback: a group output read as a gate by the same
		// group (e.g. cross-coupled pair in one CCC).
		for _, d := range g.Devices {
			for _, out := range g.Outputs {
				if d.Gate == out {
					adj[gi] = append(adj[gi], gi)
				}
			}
		}
	}
	for gi, g := range r.Groups {
		for _, out := range g.Outputs {
			for _, reader := range gateReaders[out] {
				adj[gi] = append(adj[gi], reader)
			}
		}
	}

	// Tarjan SCC.
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	counter := 0
	var sccs [][]int
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}

	hasSelfEdge := func(v int) bool {
		for _, w := range adj[v] {
			if w == v {
				return true
			}
		}
		return false
	}

	for _, scc := range sccs {
		if len(scc) == 1 && !hasSelfEdge(scc[0]) {
			continue
		}
		// A DCVSL pair is a gate-feedback loop by construction (the
		// cross-coupled pull-ups), but it is combinational dual-rail
		// logic, not a state element.
		allDCVSL := true
		for _, gi := range scc {
			if r.Groups[gi].Family != FamilyDCVSL {
				allDCVSL = false
				break
			}
		}
		if allDCVSL {
			continue
		}
		sort.Ints(scc)
		latch := Latch{Groups: scc, Static: true}
		stateSet := make(map[netlist.NodeID]bool)
		clockSet := make(map[netlist.NodeID]bool)
		inLoop := make(map[int]bool, len(scc))
		for _, gi := range scc {
			inLoop[gi] = true
		}
		for _, gi := range scc {
			g := r.Groups[gi]
			if g.Family != FamilyStaticCMOS {
				latch.Static = false
			}
			for _, ck := range g.ClockNets {
				clockSet[ck] = true
			}
			// State nodes: outputs of loop members that feed back into
			// the loop (read as a gate by a loop member).
			for _, out := range g.Outputs {
				for _, reader := range gateReaders[out] {
					if inLoop[reader] {
						stateSet[out] = true
					}
				}
				// Self-feedback within the group.
				for _, d := range g.Devices {
					if d.Gate == out {
						stateSet[out] = true
					}
				}
			}
		}
		latch.StateNodes = sortedNodeSet(stateSet)
		latch.Clocks = sortedNodeSet(clockSet)
		r.Latches = append(r.Latches, latch)
		r.StateNodes = append(r.StateNodes, latch.StateNodes...)
	}
	sort.Slice(r.Latches, func(i, j int) bool {
		return r.Latches[i].Groups[0] < r.Latches[j].Groups[0]
	})
}
