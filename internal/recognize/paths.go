package recognize

import (
	"sync"

	"repro/internal/netlist"
)

// The checks battery and the timing verifier both need the simple
// channel paths between a group node and a rail (or another group node):
// beta-ratio and edge-rate checks take the strongest path, writability
// takes the keeper paths, the timing verifier bounds drive resistance
// over all of them. Historically each package re-ran its own DFS per
// query; the enumeration now lives here, computed once per (group, from,
// to) and shared — a Result may be consulted concurrently (the fleet
// driver replays cached recognitions across workers), so the memo is
// lock-protected and cached path slices must be treated as read-only.

// pathKey identifies one memoized enumeration.
type pathKey struct {
	group    int
	from, to netlist.NodeID
}

// pathCache is the lazily built, mutex-guarded memo on a Result.
type pathCache struct {
	mu   sync.Mutex
	memo map[pathKey][][]*netlist.Device
	// adj indexes each group's devices by channel terminal so the DFS
	// expands only the devices on the frontier node instead of scanning
	// the whole group per step.
	adj map[int]map[netlist.NodeID][]*netlist.Device
}

// maxChannelPaths caps enumeration per query; giant anonymous groups
// already fall back to coarser analyses beyond it.
const maxChannelPaths = 256

// ChannelPaths returns the simple (node- and device-disjoint) channel
// paths from one node to another inside a group, never passing through a
// supply rail mid-path. Results are memoized on the Result and shared
// between callers: the returned slices must not be modified. A nil
// target (netlist.InvalidNode) returns nil.
func (r *Result) ChannelPaths(g *Group, from, to netlist.NodeID) [][]*netlist.Device {
	if to == netlist.InvalidNode {
		return nil
	}
	r.paths.mu.Lock()
	defer r.paths.mu.Unlock()
	pc := &r.paths
	if pc.memo == nil {
		pc.memo = make(map[pathKey][][]*netlist.Device)
		pc.adj = make(map[int]map[netlist.NodeID][]*netlist.Device)
	}
	key := pathKey{g.Index, from, to}
	if paths, ok := pc.memo[key]; ok {
		return paths
	}
	adj, ok := pc.adj[g.Index]
	if !ok {
		adj = make(map[netlist.NodeID][]*netlist.Device)
		for _, d := range g.Devices {
			adj[d.Source] = append(adj[d.Source], d)
			if d.Drain != d.Source {
				adj[d.Drain] = append(adj[d.Drain], d)
			}
		}
		pc.adj[g.Index] = adj
	}
	paths := enumeratePaths(r.Circuit, adj, from, to)
	pc.memo[key] = paths
	return paths
}

// enumeratePaths is the DFS walk shared by all consumers.
func enumeratePaths(c *netlist.Circuit, adj map[netlist.NodeID][]*netlist.Device, from, to netlist.NodeID) [][]*netlist.Device {
	var paths [][]*netlist.Device
	visited := map[netlist.NodeID]bool{from: true}
	used := make(map[*netlist.Device]bool)
	var cur []*netlist.Device
	var walk func(at netlist.NodeID)
	walk = func(at netlist.NodeID) {
		if len(paths) > maxChannelPaths {
			return
		}
		for _, d := range adj[at] {
			if used[d] {
				continue
			}
			next := d.Drain
			if at == d.Drain {
				next = d.Source
			}
			if next == to {
				paths = append(paths, append(append([]*netlist.Device(nil), cur...), d))
				continue
			}
			if c.IsSupply(next) || visited[next] {
				continue
			}
			visited[next] = true
			used[d] = true
			cur = append(cur, d)
			walk(next)
			cur = cur[:len(cur)-1]
			used[d] = false
			visited[next] = false
		}
	}
	walk(from)
	return paths
}
