// Package recognize deduces the logical and electrical meaning of groups
// of full-custom transistors.
//
// This is the enabling technology of the paper's entire verification
// methodology. §2.3: "A large challenge caused by our methodology is the
// automatic recognition of groups of full custom transistors in their
// logical and electrical meanings. The logical behavior or intent of a
// collection of transistors has no inherent pre-defined meaning as
// normally provided by traditional cell library approaches. Subsequently,
// all logic and timing constraints along with electrical requirements
// have to be automatically and conservatively deduced from the topology
// and context of the actual transistors."
//
// The analysis proceeds in four stages:
//
//  1. Partition devices into channel-connected components (CCCs): the
//     maximal groups connected through source/drain terminals, cut at
//     the supply rails.
//  2. For every CCC output node, derive the pull-up and pull-down
//     conduction functions by path enumeration over the switch graph.
//  3. Classify each CCC into a logic family — static complementary,
//     ratioed, dynamic (domino), DCVSL dual-rail, or pass-transistor —
//     from the shape of those functions (§2: "The logic families include
//     dynamic, single or dual-rail circuits, differential cascode voltage
//     swing logic (DCVSL), pass transistor logic, and of course,
//     complementary logic gates.")
//  4. Identify clock nets, dynamic nodes and state elements
//     ("state-elements can be invented on-the-fly", §2; their automatic
//     recognition "is essential", §4.3) via feedback analysis over the
//     CCC connectivity graph.
package recognize

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Family is the recognized logic family of a channel-connected component.
type Family int

// The logic families of §2, plus Unknown for structures the recognizer
// cannot name (which the CBV methodology reports for designer
// inspection rather than silently accepting).
const (
	FamilyUnknown Family = iota
	FamilyStaticCMOS
	FamilyRatioed
	FamilyDynamic
	FamilyDCVSL
	FamilyPassTransistor
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamilyStaticCMOS:
		return "static-cmos"
	case FamilyRatioed:
		return "ratioed"
	case FamilyDynamic:
		return "dynamic"
	case FamilyDCVSL:
		return "dcvsl"
	case FamilyPassTransistor:
		return "pass-transistor"
	default:
		return "unknown"
	}
}

// OutputFunc is the deduced behaviour of one CCC output node.
type OutputFunc struct {
	// Node is the output node.
	Node netlist.NodeID
	// PullUp is the condition under which the node is connected to vdd
	// through the CCC (in terms of gate-net variables).
	PullUp logic.Expr
	// PullDown is the condition for connection to vss.
	PullDown logic.Expr
	// Complementary reports PullUp ≡ ¬PullDown: the node is always
	// driven, never floating, never fighting.
	Complementary bool
	// CanFloat reports that some input assignment leaves the node
	// connected to neither rail (a dynamic/storage condition).
	CanFloat bool
	// CanFight reports that some input assignment connects the node to
	// both rails at once (ratioed or erroneous).
	CanFight bool
	// Function is the logic function of the node where it is defined:
	// ¬PullDown for complementary and dynamic (evaluate-phase) logic.
	// May be nil when the node has no clean functional abstraction.
	Function logic.Expr
}

// Group is one channel-connected component with its deduced meaning.
type Group struct {
	// Index is the group's position in Result.Groups.
	Index int
	// Devices are the member transistors.
	Devices []*netlist.Device
	// Internal are channel nodes entirely inside the group.
	Internal []netlist.NodeID
	// Outputs are channel nodes visible outside: ports, or nodes that
	// drive gates elsewhere.
	Outputs []netlist.NodeID
	// Inputs are the distinct gate nets of member devices that are not
	// produced by this group.
	Inputs []netlist.NodeID
	// ChannelInputs are non-supply external nodes used as source/drain
	// (signals that pass *through* the group) — the signature of
	// pass-transistor structures.
	ChannelInputs []netlist.NodeID
	// Family is the recognized logic family.
	Family Family
	// Funcs are per-output deduced behaviours.
	Funcs []*OutputFunc
	// ClockNets are the clock nodes gating this group (precharge or
	// pass clocks), if any.
	ClockNets []netlist.NodeID
	// Footed, for dynamic groups, reports whether the evaluate tree
	// includes a clocked foot device in every pull-down path.
	Footed bool
}

// Func returns the OutputFunc for a node, or nil.
func (g *Group) Func(id netlist.NodeID) *OutputFunc {
	for _, f := range g.Funcs {
		if f.Node == id {
			return f
		}
	}
	return nil
}

// Latch is a recognized state element: a feedback loop in the CCC graph.
type Latch struct {
	// Groups are the indices of the CCCs forming the loop.
	Groups []int
	// StateNodes are the nodes holding state (outputs inside the loop).
	StateNodes []netlist.NodeID
	// Clocks are clock nets gating any group in the loop (empty for an
	// unclocked keeper/cross-coupled pair).
	Clocks []netlist.NodeID
	// Static reports whether the loop holds state without a clock
	// (cross-coupled keeper) as opposed to a dynamic storage node.
	Static bool
}

// Result is the full recognition of a flat circuit.
type Result struct {
	// Circuit is the analyzed circuit.
	Circuit *netlist.Circuit
	// Groups are the channel-connected components.
	Groups []*Group
	// GroupOfDevice maps device index (position in Circuit.Devices) to
	// group index.
	GroupOfDevice []int
	// DriverOf maps a node to the group that drives it (-1 if none).
	DriverOf map[netlist.NodeID]int
	// Clocks are the identified clock nets, sorted.
	Clocks []netlist.NodeID
	// DynamicNodes are outputs of dynamic groups (precharged nodes).
	DynamicNodes []netlist.NodeID
	// StateNodes are nodes recognized as holding state.
	StateNodes []netlist.NodeID
	// Latches are the recognized state elements.
	Latches []Latch

	// paths memoizes channel-path enumerations (see ChannelPaths). Its
	// mutex makes the Result safe for concurrent read-side consumers.
	paths pathCache
}

// IsClock reports whether the node was identified as a clock.
func (r *Result) IsClock(id netlist.NodeID) bool {
	for _, c := range r.Clocks {
		if c == id {
			return true
		}
	}
	return false
}

// IsDynamic reports whether the node is a recognized dynamic node.
func (r *Result) IsDynamic(id netlist.NodeID) bool {
	for _, d := range r.DynamicNodes {
		if d == id {
			return true
		}
	}
	return false
}

// IsState reports whether the node is a recognized state node.
func (r *Result) IsState(id netlist.NodeID) bool {
	for _, s := range r.StateNodes {
		if s == id {
			return true
		}
	}
	return false
}

// GroupDriving returns the group whose output drives the node, or nil.
func (r *Result) GroupDriving(id netlist.NodeID) *Group {
	if gi, ok := r.DriverOf[id]; ok && gi >= 0 {
		return r.Groups[gi]
	}
	return nil
}

// Summary returns a one-line-per-family count report.
func (r *Result) Summary() string {
	counts := make(map[Family]int)
	for _, g := range r.Groups {
		counts[g.Family]++
	}
	fams := []Family{FamilyStaticCMOS, FamilyDynamic, FamilyDCVSL, FamilyRatioed, FamilyPassTransistor, FamilyUnknown}
	var parts []string
	for _, f := range fams {
		if counts[f] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f, counts[f]))
		}
	}
	return fmt.Sprintf("%d groups (%s), %d clocks, %d dynamic nodes, %d latches",
		len(r.Groups), strings.Join(parts, " "), len(r.Clocks), len(r.DynamicNodes), len(r.Latches))
}

// Analyze runs the full recognition pipeline on a flat circuit.
// Instances must have been flattened away (hierarchy carries no meaning
// for recognition, per §2.1).
func Analyze(c *netlist.Circuit) (*Result, error) {
	if len(c.Instances) > 0 {
		return nil, fmt.Errorf("recognize: circuit %s has %d unflattened instances; flatten first", c.Name, len(c.Instances))
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("recognize: %w", err)
	}
	r := &Result{
		Circuit:  c,
		DriverOf: make(map[netlist.NodeID]int),
	}
	r.buildGroups()
	clocks := r.identifyClocks()
	for _, g := range r.Groups {
		g.deriveFuncs(c, clocks)
	}
	// Second pass: functional inference of unnamed domino clocks, then
	// re-derive so evaluate-phase abstractions see the full clock set.
	if inferred := r.inferDominoClocks(clocks); len(inferred) > 0 {
		for ck := range inferred {
			clocks[ck] = true
		}
		for _, g := range r.Groups {
			g.Funcs = nil
			g.deriveFuncs(c, clocks)
		}
	}
	for _, g := range r.Groups {
		g.classify(c, clocks)
	}
	r.pairDCVSL()
	// Clock-gated groups recorded; collect dynamic nodes.
	for _, g := range r.Groups {
		if g.Family == FamilyDynamic {
			for _, f := range g.Funcs {
				r.DynamicNodes = append(r.DynamicNodes, f.Node)
			}
		}
	}
	r.Clocks = sortedNodeSet(clocks)
	r.findLatches()
	sortNodes(r.DynamicNodes)
	sortNodes(r.StateNodes)
	return r, nil
}

// sortNodes sorts a node slice in place.
func sortNodes(ids []netlist.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// sortedNodeSet converts a set to a sorted slice.
func sortedNodeSet(set map[netlist.NodeID]bool) []netlist.NodeID {
	out := make([]netlist.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sortNodes(out)
	return out
}
