package recognize

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// analyze is a test helper that fails on error.
func analyze(t *testing.T, c *netlist.Circuit) *Result {
	t.Helper()
	r, err := Analyze(c)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", c.Name, err)
	}
	return r
}

// buildInverter returns a circuit containing one inverter a→y.
func buildInverter() *netlist.Circuit {
	c := netlist.New("inv")
	c.DeclarePort("a")
	c.DeclarePort("y")
	c.NMOS("mn", "a", "vss", "y", 2, 0.75)
	c.PMOS("mp", "a", "vdd", "y", 4, 0.75)
	return c
}

func TestInverterRecognition(t *testing.T) {
	r := analyze(t, buildInverter())
	if len(r.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(r.Groups))
	}
	g := r.Groups[0]
	if g.Family != FamilyStaticCMOS {
		t.Errorf("family = %v, want static-cmos", g.Family)
	}
	if len(g.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(g.Funcs))
	}
	f := g.Funcs[0]
	if !f.Complementary || f.CanFloat || f.CanFight {
		t.Errorf("inverter flags: comp=%v float=%v fight=%v", f.Complementary, f.CanFloat, f.CanFight)
	}
	if !logic.Equivalent(f.Function, logic.Not(logic.Var("a"))) {
		t.Errorf("function = %v, want !a", f.Function)
	}
}

func TestNAND2Recognition(t *testing.T) {
	c := netlist.New("nand2")
	for _, p := range []string{"a", "b", "y"} {
		c.DeclarePort(p)
	}
	c.NMOS("mn1", "a", "mid", "y", 4, 0.75)
	c.NMOS("mn2", "b", "vss", "mid", 4, 0.75)
	c.PMOS("mp1", "a", "vdd", "y", 4, 0.75)
	c.PMOS("mp2", "b", "vdd", "y", 4, 0.75)
	r := analyze(t, c)
	g := r.Groups[0]
	if g.Family != FamilyStaticCMOS {
		t.Errorf("family = %v", g.Family)
	}
	f := g.Func(c.FindNode("y"))
	if f == nil {
		t.Fatal("no function for y")
	}
	want := logic.Not(logic.And(logic.Var("a"), logic.Var("b")))
	if !logic.Equivalent(f.Function, want) {
		t.Errorf("function = %v, want !(a&b)", f.Function)
	}
	// The internal stack node is internal, not an output.
	if len(g.Internal) != 1 || c.NodeName(g.Internal[0]) != "mid" {
		t.Errorf("internal nodes = %v", g.Internal)
	}
}

func TestAOIRecognition(t *testing.T) {
	// AOI21: y = !(a&b | c). Pull-down: a&b parallel c; pull-up dual.
	c := netlist.New("aoi21")
	for _, p := range []string{"a", "b", "c", "y"} {
		c.DeclarePort(p)
	}
	c.NMOS("mn1", "a", "x1", "y", 4, 0.75)
	c.NMOS("mn2", "b", "vss", "x1", 4, 0.75)
	c.NMOS("mn3", "c", "vss", "y", 4, 0.75)
	c.PMOS("mp1", "a", "vdd", "x2", 6, 0.75)
	c.PMOS("mp2", "b", "vdd", "x2", 6, 0.75)
	c.PMOS("mp3", "c", "x2", "y", 6, 0.75)
	r := analyze(t, c)
	g := r.Groups[0]
	if g.Family != FamilyStaticCMOS {
		t.Errorf("family = %v", g.Family)
	}
	f := g.Func(c.FindNode("y"))
	want := logic.Not(logic.Or(logic.And(logic.Var("a"), logic.Var("b")), logic.Var("c")))
	if !logic.Equivalent(f.Function, want) {
		t.Errorf("function = %v, want !(a&b|c)", f.Function)
	}
}

func TestTwoGroupsSplit(t *testing.T) {
	// Two cascaded inverters are separate CCCs (gate is a boundary).
	c := netlist.New("buf")
	c.DeclarePort("a")
	c.DeclarePort("y")
	c.NMOS("mn1", "a", "vss", "m", 2, 0.75)
	c.PMOS("mp1", "a", "vdd", "m", 4, 0.75)
	c.NMOS("mn2", "m", "vss", "y", 2, 0.75)
	c.PMOS("mp2", "m", "vdd", "y", 4, 0.75)
	r := analyze(t, c)
	if len(r.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(r.Groups))
	}
	// m is an output of group 0 (drives gates of group 1).
	m := c.FindNode("m")
	g := r.GroupDriving(m)
	if g == nil {
		t.Fatal("no driver recorded for m")
	}
	if !contains(g.Outputs, m) {
		t.Error("m should be an output of its group")
	}
}

func TestPseudoNMOSRatioed(t *testing.T) {
	// Pseudo-NMOS NOR: grounded-gate PMOS load, NMOS pull-downs.
	c := netlist.New("pnor")
	for _, p := range []string{"a", "b", "y"} {
		c.DeclarePort(p)
	}
	c.PMOS("mload", "vss", "vdd", "y", 2, 1.5) // gate tied to vss: always on
	c.NMOS("mn1", "a", "vss", "y", 6, 0.75)
	c.NMOS("mn2", "b", "vss", "y", 6, 0.75)
	r := analyze(t, c)
	g := r.Groups[0]
	if g.Family != FamilyRatioed {
		t.Errorf("family = %v, want ratioed", g.Family)
	}
	f := g.Func(c.FindNode("y"))
	if !f.CanFight {
		t.Error("ratioed output should be able to fight")
	}
	if f.CanFloat {
		t.Error("pseudo-NMOS output never floats")
	}
}

// buildDomino returns a footed domino AND2 with the given clock name.
func buildDomino(clk string) *netlist.Circuit {
	c := netlist.New("domino_and2")
	for _, p := range []string{"a", "b", "out"} {
		c.DeclarePort(p)
	}
	c.PMOS("mpre", clk, "vdd", "dyn", 4, 0.75) // precharge
	c.NMOS("ma", "a", "x1", "dyn", 6, 0.75)    // eval tree
	c.NMOS("mb", "b", "x2", "x1", 6, 0.75)
	c.NMOS("mfoot", clk, "vss", "x2", 8, 0.75) // clocked foot
	// Output static inverter (the domino buffer).
	c.NMOS("mn", "dyn", "vss", "out", 2, 0.75)
	c.PMOS("mp", "dyn", "vdd", "out", 4, 0.75)
	return c
}

func TestDominoRecognitionByName(t *testing.T) {
	c := buildDomino("phi1")
	r := analyze(t, c)
	if !r.IsClock(c.FindNode("phi1")) {
		t.Fatal("phi1 not identified as clock")
	}
	dyn := c.FindNode("dyn")
	g := r.GroupDriving(dyn)
	if g == nil {
		t.Fatal("no driver for dyn")
	}
	if g.Family != FamilyDynamic {
		t.Fatalf("family = %v, want dynamic", g.Family)
	}
	if !g.Footed {
		t.Error("footed domino should be recognized as footed")
	}
	if !r.IsDynamic(dyn) {
		t.Error("dyn should be a dynamic node")
	}
	f := g.Func(dyn)
	if !f.CanFloat {
		t.Error("dynamic node must be able to float")
	}
	// Evaluate-phase function: dyn = !(a&b).
	want := logic.Not(logic.And(logic.Var("a"), logic.Var("b")))
	if !logic.Equivalent(f.Function, want) {
		t.Errorf("evaluate function = %v, want !(a&b)", f.Function)
	}
	// The output buffer stays static.
	out := c.FindNode("out")
	if r.GroupDriving(out).Family != FamilyStaticCMOS {
		t.Error("domino output buffer should be static CMOS")
	}
}

func TestDominoClockInferredTopologically(t *testing.T) {
	// Same structure with an unconventional clock name: the X≠Y
	// precharge/foot signature must still find it.
	c := buildDomino("en_q")
	r := analyze(t, c)
	if !r.IsClock(c.FindNode("en_q")) {
		t.Fatal("topological clock inference failed")
	}
	dyn := c.FindNode("dyn")
	if r.GroupDriving(dyn).Family != FamilyDynamic {
		t.Errorf("family = %v, want dynamic", r.GroupDriving(dyn).Family)
	}
}

func TestInverterInputNotMistakenForClock(t *testing.T) {
	// Regression guard for the inference rule: a plain inverter input
	// gates PMOS-from-vdd and NMOS-from-vss onto the SAME node and must
	// not be called a clock.
	r := analyze(t, buildInverter())
	if r.IsClock(r.Circuit.FindNode("a")) {
		t.Error("inverter input misclassified as clock")
	}
}

func TestClockAttrRecognized(t *testing.T) {
	c := buildDomino("weird")
	c.SetAttr(c.FindNode("weird"), "clock", "phi2")
	r := analyze(t, c)
	if !r.IsClock(c.FindNode("weird")) {
		t.Error("clock attribute ignored")
	}
}

func TestDCVSLRecognition(t *testing.T) {
	// DCVSL AND/NAND: cross-coupled PMOS, NMOS trees on true/complement
	// input rails (a, an, b, bn).
	c := netlist.New("dcvsl_and")
	for _, p := range []string{"a", "an", "b", "bn", "q", "qn"} {
		c.DeclarePort(p)
	}
	c.PMOS("mp1", "qn", "vdd", "q", 4, 0.75) // cross-coupled
	c.PMOS("mp2", "q", "vdd", "qn", 4, 0.75)
	// q pulled low when !(a&b): an | bn tree.
	c.NMOS("mn1", "an", "vss", "q", 4, 0.75)
	c.NMOS("mn2", "bn", "vss", "q", 4, 0.75)
	// qn pulled low when a&b.
	c.NMOS("mn3", "a", "x", "qn", 4, 0.75)
	c.NMOS("mn4", "b", "vss", "x", 4, 0.75)
	r := analyze(t, c)
	// The two halves are separate CCCs (cross-coupling is via gates).
	if len(r.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(r.Groups))
	}
	for _, g := range r.Groups {
		if g.Family != FamilyDCVSL {
			t.Errorf("group %d family = %v, want dcvsl", g.Index, g.Family)
		}
	}
	// The cross-coupled pair must not be reported as a latch.
	if len(r.Latches) != 0 {
		t.Errorf("DCVSL reported as latch: %+v", r.Latches)
	}
}

func TestPassTransistorRecognition(t *testing.T) {
	// Transmission-gate mux: two tgates steering ports a/b to m, then a
	// static buffer to y.
	c := netlist.New("tgmux")
	for _, p := range []string{"a", "b", "s", "sn", "y"} {
		c.DeclarePort(p)
	}
	c.NMOS("mn1", "s", "a", "m", 4, 0.75)
	c.PMOS("mp1", "sn", "a", "m", 4, 0.75)
	c.NMOS("mn2", "sn", "b", "m", 4, 0.75)
	c.PMOS("mp2", "s", "b", "m", 4, 0.75)
	c.NMOS("mn3", "m", "vss", "y", 2, 0.75)
	c.PMOS("mp3", "m", "vdd", "y", 4, 0.75)
	r := analyze(t, c)
	m := c.FindNode("m")
	g := r.GroupDriving(m)
	if g == nil {
		t.Fatal("no driver group for m")
	}
	if g.Family != FamilyPassTransistor {
		t.Errorf("family = %v, want pass-transistor", g.Family)
	}
	if len(g.ChannelInputs) == 0 {
		t.Error("mux data ports should be channel inputs")
	}
}

func TestCrossCoupledLatchDetection(t *testing.T) {
	// Two cross-coupled inverters: classic keeper. Two groups forming
	// an SCC → one static latch with two state nodes.
	c := netlist.New("keeper")
	c.DeclarePort("q")
	c.DeclarePort("qn")
	c.NMOS("mn1", "q", "vss", "qn", 2, 0.75)
	c.PMOS("mp1", "q", "vdd", "qn", 4, 0.75)
	c.NMOS("mn2", "qn", "vss", "q", 2, 0.75)
	c.PMOS("mp2", "qn", "vdd", "q", 4, 0.75)
	r := analyze(t, c)
	if len(r.Latches) != 1 {
		t.Fatalf("latches = %d, want 1", len(r.Latches))
	}
	l := r.Latches[0]
	if !l.Static {
		t.Error("keeper should be static")
	}
	if len(l.StateNodes) != 2 {
		t.Errorf("state nodes = %d, want 2", len(l.StateNodes))
	}
	if !r.IsState(c.FindNode("q")) || !r.IsState(c.FindNode("qn")) {
		t.Error("q/qn should be state nodes")
	}
}

func TestLatchWithPassGate(t *testing.T) {
	// Level-sensitive latch: tgate into a keeper loop with a weak
	// feedback inverter. d -(phi)-> m; m -> inv -> q; q -> weak inv -> m.
	c := netlist.New("latch")
	for _, p := range []string{"d", "phi", "phin", "q"} {
		c.DeclarePort(p)
	}
	c.NMOS("mpass_n", "phi", "d", "m", 4, 0.75)
	c.PMOS("mpass_p", "phin", "d", "m", 4, 0.75)
	c.NMOS("mn1", "m", "vss", "q", 2, 0.75)
	c.PMOS("mp1", "m", "vdd", "q", 4, 0.75)
	c.NMOS("mn2", "q", "vss", "m", 1, 0.75) // weak feedback
	c.PMOS("mp2", "q", "vdd", "m", 2, 0.75)
	r := analyze(t, c)
	if len(r.Latches) != 1 {
		t.Fatalf("latches = %d, want 1 (%s)", len(r.Latches), r.Summary())
	}
	if !r.IsClock(c.FindNode("phi")) {
		t.Error("phi should be a clock by name")
	}
}

func TestNoFalseLatchInCombinational(t *testing.T) {
	// An inverter chain has no feedback: zero latches.
	c := netlist.New("chain")
	c.DeclarePort("a")
	prev := "a"
	for i := 0; i < 5; i++ {
		next := "n" + string(rune('0'+i))
		c.NMOS("mn"+next, prev, "vss", next, 2, 0.75)
		c.PMOS("mp"+next, prev, "vdd", next, 4, 0.75)
		prev = next
	}
	r := analyze(t, c)
	if len(r.Latches) != 0 {
		t.Errorf("latches = %d, want 0", len(r.Latches))
	}
	if len(r.StateNodes) != 0 {
		t.Errorf("state nodes = %v", r.StateNodes)
	}
}

func TestAnalyzeRejectsHierarchy(t *testing.T) {
	c := netlist.New("h")
	c.AddInstance("x", "foo", "n")
	if _, err := Analyze(c); err == nil || !strings.Contains(err.Error(), "flatten") {
		t.Errorf("want flatten error, got %v", err)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	c := netlist.New("bad")
	c.NMOS("m", "a", "vss", "y", -1, 0.75)
	if _, err := Analyze(c); err == nil {
		t.Error("want validation error")
	}
}

func TestOversizedGroupIsUnknown(t *testing.T) {
	// A giant parallel network beyond maxPathDevices falls back to
	// FamilyUnknown rather than exploding.
	c := netlist.New("huge")
	c.DeclarePort("y")
	for i := 0; i < maxPathDevices+1; i++ {
		c.NMOS("m"+itoa(i), "g"+itoa(i), "vss", "y", 2, 0.75)
	}
	r := analyze(t, c)
	if r.Groups[0].Family != FamilyUnknown {
		t.Errorf("family = %v, want unknown", r.Groups[0].Family)
	}
}

func TestSummaryMentionsFamilies(t *testing.T) {
	r := analyze(t, buildDomino("phi1"))
	s := r.Summary()
	for _, want := range []string{"dynamic=1", "static-cmos=1", "1 clocks", "1 dynamic nodes"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestFamilyString(t *testing.T) {
	fams := map[Family]string{
		FamilyStaticCMOS:     "static-cmos",
		FamilyRatioed:        "ratioed",
		FamilyDynamic:        "dynamic",
		FamilyDCVSL:          "dcvsl",
		FamilyPassTransistor: "pass-transistor",
		FamilyUnknown:        "unknown",
	}
	for f, want := range fams {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), want)
		}
	}
}

func TestTristateCanFloat(t *testing.T) {
	// Tri-state inverter: en gates both networks; output floats when
	// disabled.
	c := netlist.New("tri")
	for _, p := range []string{"a", "en", "enb", "y"} {
		c.DeclarePort(p)
	}
	c.NMOS("mn1", "a", "x1", "y", 2, 0.75)
	c.NMOS("mn2", "en", "vss", "x1", 2, 0.75)
	c.PMOS("mp1", "a", "x2", "y", 4, 0.75)
	c.PMOS("mp2", "enb", "vdd", "x2", 4, 0.75)
	r := analyze(t, c)
	f := r.Groups[0].Func(c.FindNode("y"))
	if !f.CanFloat {
		t.Error("tri-state output must be able to float")
	}
	if f.Complementary {
		t.Error("tri-state output is not complementary")
	}
}

// contains reports membership of id in ids.
func contains(ids []netlist.NodeID, id netlist.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// itoa is a tiny strconv.Itoa to keep the import list short.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestNANDInputsNotClocks(t *testing.T) {
	// Regression guard for functional clock inference: a NAND's bottom
	// input gates both a PMOS-from-vdd (onto the output) and an
	// NMOS-from-vss (onto the stack node) — the structural signature of
	// a precharge/foot pair — but the gate is complementary, so it must
	// never be inferred as a clock.
	c := netlist.New("nand2")
	for _, p := range []string{"a", "b", "y"} {
		c.DeclarePort(p)
	}
	c.NMOS("mn1", "a", "mid", "y", 4, 0.75)
	c.NMOS("mn2", "b", "vss", "mid", 4, 0.75)
	c.PMOS("mp1", "a", "vdd", "y", 4, 0.75)
	c.PMOS("mp2", "b", "vdd", "y", 4, 0.75)
	r := analyze(t, c)
	if len(r.Clocks) != 0 {
		t.Errorf("NAND inputs misinferred as clocks: %v", r.Clocks)
	}
}

func TestKeeperDominoClockStillInferred(t *testing.T) {
	// With a keeper, forcing the clock on leaves only the keeper's
	// feedback in the pull-up; inference must still find the clock.
	c := buildDomino("enq")
	c.PMOS("mkeep", "out", "vdd", "dyn", 1, 1.125)
	r := analyze(t, c)
	if !r.IsClock(c.FindNode("enq")) {
		t.Error("keeper defeated domino clock inference")
	}
	if r.GroupDriving(c.FindNode("dyn")).Family != FamilyDynamic {
		t.Error("keeper-equipped domino not classified dynamic")
	}
}
