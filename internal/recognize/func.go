package recognize

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/process"
)

// maxPathDevices bounds path enumeration: CCCs in real full-custom logic
// are small (a complex gate is tens of devices); beyond this the
// recognizer reports FamilyUnknown rather than blow up, which the CBV
// flow surfaces for designer inspection.
const maxPathDevices = 64

// maxFuncVars bounds the distinct gate nets a deduced function may
// involve before the recognizer gives up on a functional abstraction:
// BDD analysis of wide wired structures (bit columns, buses) is
// exponential in the worst case, and no hand-designed gate has dozens
// of inputs. Past the bound the node keeps no Function and the group
// degrades toward FamilyUnknown.
const maxFuncVars = 18

// maxPaths bounds the number of simple conduction paths enumerated per
// (output, rail) pair. Star-shaped structures (shared bitlines, wide
// wired buses) can have combinatorially many simple paths; past this cap
// the function is abandoned and the group degrades to FamilyUnknown —
// conservative, never wrong.
const maxPaths = 96

// deriveFuncs computes the pull-up and pull-down conduction functions of
// every output node by enumerating simple source/drain paths to the
// rails. A device contributes its gate literal: an NMOS conducts when
// its gate is high (variable), a PMOS when low (negated variable); gates
// tied to rails contribute constants.
func (g *Group) deriveFuncs(c *netlist.Circuit, clocks map[netlist.NodeID]bool) {
	if len(g.Devices) > maxPathDevices {
		// Too large to enumerate; leave Funcs nil → FamilyUnknown.
		return
	}
	vdd, vss := c.FindNode(netlist.VddName), c.FindNode(netlist.VssName)
	for _, out := range g.Outputs {
		up, okUp := g.conduction(c, out, vdd)
		down, okDown := g.conduction(c, out, vss)
		if !okUp || !okDown {
			continue // path blow-up: no clean abstraction for this node
		}
		if len(logic.Vars(logic.Or(logic.And(up, logic.False), up, down))) > maxFuncVars {
			continue // support blow-up: BDD analysis would be unbounded
		}
		f := &OutputFunc{
			Node:     out,
			PullUp:   up,
			PullDown: down,
		}
		f.Complementary = logic.Equivalent(up, logic.Not(down))
		f.CanFloat = logic.Satisfiable(logic.And(logic.Not(up), logic.Not(down)))
		f.CanFight = logic.Satisfiable(logic.And(up, down))
		if f.Complementary {
			f.Function = logic.Not(down)
		} else if !f.CanFight {
			// Evaluate-phase abstraction for clocked logic: with all
			// clocks asserted (evaluate), a non-fighting node computes
			// ¬pulldown when driven; this is the domino convention.
			eval := down
			for ck := range clocks {
				eval = logic.Substitute(eval, c.NodeName(ck), logic.True)
			}
			f.Function = logic.Not(eval)
		}
		g.Funcs = append(g.Funcs, f)
	}
}

// conduction returns the boolean condition under which a conducting
// source/drain path exists from node `from` to rail `to`, as an OR over
// simple paths of ANDs of gate literals. ok is false when enumeration
// exceeds maxPaths.
func (g *Group) conduction(c *netlist.Circuit, from, to netlist.NodeID) (expr logic.Expr, ok bool) {
	if to == netlist.InvalidNode {
		return logic.False, true
	}
	visitedNodes := map[netlist.NodeID]bool{from: true}
	usedDevices := make(map[*netlist.Device]bool)
	var terms []logic.Expr
	overflow := false
	var walk func(at netlist.NodeID, lits []logic.Expr)
	walk = func(at netlist.NodeID, lits []logic.Expr) {
		if overflow {
			return
		}
		for _, d := range g.Devices {
			if usedDevices[d] {
				continue
			}
			var next netlist.NodeID
			switch at {
			case d.Source:
				next = d.Drain
			case d.Drain:
				next = d.Source
			default:
				continue
			}
			lit := gateLiteral(c, d)
			if lit == logic.False {
				continue // permanently-off device cannot conduct
			}
			if next == to {
				if len(terms) >= maxPaths {
					overflow = true
					return
				}
				terms = append(terms, logic.And(append(append([]logic.Expr(nil), lits...), lit)...))
				continue
			}
			// Stop at any other rail or already-visited node.
			if c.IsSupply(next) || visitedNodes[next] {
				continue
			}
			visitedNodes[next] = true
			usedDevices[d] = true
			walk(next, append(lits, lit))
			usedDevices[d] = false
			visitedNodes[next] = false
		}
	}
	walk(from, nil)
	if overflow {
		return nil, false
	}
	return logic.Or(terms...), true
}

// gateLiteral returns the conduction literal of a device: the condition
// on its gate net under which the channel conducts.
func gateLiteral(c *netlist.Circuit, d *netlist.Device) logic.Expr {
	switch {
	case c.IsVdd(d.Gate):
		if d.Type == process.NMOS {
			return logic.True // always-on NMOS
		}
		return logic.False // permanently-off PMOS
	case c.IsVss(d.Gate):
		if d.Type == process.NMOS {
			return logic.False
		}
		return logic.True // grounded-gate PMOS: always-on (ratioed load)
	}
	v := logic.Var(c.NodeName(d.Gate))
	if d.Type == process.NMOS {
		return v
	}
	return logic.Not(v)
}
