package recognize_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/recognize"
)

// Allocation regression pin for CCC extraction. The stamped marker
// arrays and CSR channel incidence brought full recognition of the
// SRAM array from ~9000 allocations to ~2700; the bound fails if the
// per-group maps come back.
func TestAnalyzeAllocs(t *testing.T) {
	c := designs.SRAMArray(32, 16, 0)
	if _, err := recognize.Analyze(c); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := recognize.Analyze(c); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 5000 {
		t.Fatalf("Analyze allocates %.0f/op, want <= 5000 (seed was ~9000)", avg)
	}
}
