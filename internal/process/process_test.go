package process

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuiltinProcessesValidate(t *testing.T) {
	for _, p := range []*Process{CMOS075(), CMOS050(), CMOS035LP()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cmos075", "cmos050", "cmos035lp"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("cmos013"); err == nil {
		t.Error("ByName(unknown) should fail")
	} else if !strings.Contains(err.Error(), "cmos075") {
		t.Errorf("error should list known processes, got %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Process)
	}{
		{"empty name", func(p *Process) { p.Name = "" }},
		{"zero Lmin", func(p *Process) { p.Lmin = 0 }},
		{"zero Vdd", func(p *Process) { p.Vdd = 0 }},
		{"zero VtN", func(p *Process) { p.VtN = 0 }},
		{"Vt above Vdd", func(p *Process) { p.VtN = p.Vdd + 1 }},
		{"zero KPn", func(p *Process) { p.KPn = 0 }},
		{"PMOS stronger than NMOS", func(p *Process) { p.KPp = p.KPn * 2 }},
		{"impossible swing", func(p *Process) { p.SubthresholdSwing = 40 }},
		{"negative leakage", func(p *Process) { p.Ioff0 = -1 }},
	}
	for _, c := range cases {
		p := CMOS075()
		c.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid process", c.name)
		}
	}
}

func TestVtCornerOrdering(t *testing.T) {
	p := CMOS035LP()
	for _, dt := range []DeviceType{NMOS, PMOS} {
		fast := p.Vt(dt, StandardVt, Fast)
		typ := p.Vt(dt, StandardVt, Typical)
		slow := p.Vt(dt, StandardVt, Slow)
		if !(fast < typ && typ < slow) {
			t.Errorf("%v: Vt ordering fast(%g) < typ(%g) < slow(%g) violated", dt, fast, typ, slow)
		}
	}
}

func TestVtClassOrdering(t *testing.T) {
	p := CMOS035LP()
	lvt := p.Vt(NMOS, LowVt, Typical)
	svt := p.Vt(NMOS, StandardVt, Typical)
	hvt := p.Vt(NMOS, HighVt, Typical)
	if !(lvt < svt && svt < hvt) {
		t.Errorf("Vt class ordering lvt(%g) < svt(%g) < hvt(%g) violated", lvt, svt, hvt)
	}
}

func TestIdsatScalesWithGeometry(t *testing.T) {
	p := CMOS075()
	base := p.Idsat(NMOS, StandardVt, 2, p.Lmin, Typical)
	if base <= 0 {
		t.Fatalf("Idsat = %g, want positive", base)
	}
	double := p.Idsat(NMOS, StandardVt, 4, p.Lmin, Typical)
	if math.Abs(double/base-2) > 1e-9 {
		t.Errorf("doubling W should double Idsat: %g vs %g", double, base)
	}
	long := p.Idsat(NMOS, StandardVt, 2, 2*p.Lmin, Typical)
	if math.Abs(long/base-0.5) > 1e-9 {
		t.Errorf("doubling L should halve Idsat: %g vs %g", long, base)
	}
}

func TestIdsatZeroWhenVtExceedsVdd(t *testing.T) {
	p := CMOS075()
	p.VtN = p.Vdd + 0.5 // force an off device (Validate would reject; bypass it)
	if got := p.Idsat(NMOS, StandardVt, 2, p.Lmin, Typical); got != 0 {
		t.Errorf("Idsat with Vt > Vdd = %g, want 0", got)
	}
}

func TestReffCornerOrdering(t *testing.T) {
	p := CMOS075()
	fast := p.Reff(NMOS, StandardVt, 2, p.Lmin, Fast)
	typ := p.Reff(NMOS, StandardVt, 2, p.Lmin, Typical)
	slow := p.Reff(NMOS, StandardVt, 2, p.Lmin, Slow)
	if !(fast < typ && typ < slow) {
		t.Errorf("Reff ordering fast(%g) < typ(%g) < slow(%g) violated", fast, typ, slow)
	}
}

func TestReffInfiniteForDeadDevice(t *testing.T) {
	p := CMOS075()
	p.VtN = p.Vdd + 1
	if r := p.Reff(NMOS, StandardVt, 2, p.Lmin, Typical); !math.IsInf(r, 1) {
		t.Errorf("Reff of non-conducting device = %g, want +Inf", r)
	}
}

func TestPMOSWeakerThanNMOS(t *testing.T) {
	p := CMOS075()
	rn := p.Reff(NMOS, StandardVt, 2, p.Lmin, Typical)
	rp := p.Reff(PMOS, StandardVt, 2, p.Lmin, Typical)
	if rp <= rn {
		t.Errorf("equal-size PMOS should be more resistive: Rp=%g Rn=%g", rp, rn)
	}
}

func TestLeakageLowVtExceedsStandard(t *testing.T) {
	p := CMOS035LP()
	lvt := p.IleakUA(NMOS, LowVt, 10, 0, Typical)
	svt := p.IleakUA(NMOS, StandardVt, 10, 0, Typical)
	if lvt <= svt {
		t.Errorf("low-Vt leakage (%g) should exceed standard-Vt (%g)", lvt, svt)
	}
}

func TestLeakageFastCornerWorst(t *testing.T) {
	p := CMOS035LP()
	fast := p.IleakUA(NMOS, LowVt, 10, 0, Fast)
	typ := p.IleakUA(NMOS, LowVt, 10, 0, Typical)
	slow := p.IleakUA(NMOS, LowVt, 10, 0, Slow)
	if !(fast > typ && typ > slow) {
		t.Errorf("leakage ordering fast(%g) > typ(%g) > slow(%g) violated", fast, typ, slow)
	}
}

func TestLeakageChannelLengthening(t *testing.T) {
	// §3: lengthening by 0.045 or 0.09 µm cuts leakage enough to meet
	// the standby spec. Each increment must cut leakage by a large,
	// monotonic factor.
	p := CMOS035LP()
	l0 := p.IleakUA(NMOS, LowVt, 10, 0, Fast)
	l45 := p.IleakUA(NMOS, LowVt, 10, 0.045, Fast)
	l90 := p.IleakUA(NMOS, LowVt, 10, 0.09, Fast)
	if !(l0 > l45 && l45 > l90) {
		t.Fatalf("lengthening must reduce leakage monotonically: %g, %g, %g", l0, l45, l90)
	}
	if l0/l45 < 2 {
		t.Errorf("0.045 µm lengthening should cut leakage by ≥2×, got %.2f×", l0/l45)
	}
	ratio1, ratio2 := l0/l45, l45/l90
	if math.Abs(ratio1-ratio2)/ratio1 > 1e-6 {
		t.Errorf("leakage reduction should be exponential in ΔL: ratios %g vs %g", ratio1, ratio2)
	}
}

func TestFO4OrderingAcrossCorners(t *testing.T) {
	for _, p := range []*Process{CMOS075(), CMOS050(), CMOS035LP()} {
		fast := p.FO4ps(Fast)
		typ := p.FO4ps(Typical)
		slow := p.FO4ps(Slow)
		if !(fast < typ && typ < slow) {
			t.Errorf("%s: FO4 ordering fast(%g) < typ(%g) < slow(%g) violated", p.Name, fast, typ, slow)
		}
	}
}

func TestFO4ScalesWithProcess(t *testing.T) {
	// Newer processes must be faster: 0.35 µm < 0.5 µm < 0.75 µm FO4.
	f035 := CMOS035LP().FO4ps(Typical)
	f050 := CMOS050().FO4ps(Typical)
	f075 := CMOS075().FO4ps(Typical)
	if !(f035 < f050 && f050 < f075) {
		t.Errorf("FO4 should shrink with process: 0.35=%g 0.5=%g 0.75=%g", f035, f050, f075)
	}
}

func TestWireModels(t *testing.T) {
	p := CMOS075()
	if got := p.WireC(100); math.Abs(got-100*p.CwireFF) > 1e-12 {
		t.Errorf("WireC(100) = %g", got)
	}
	if got := p.WireR(100); math.Abs(got-100*p.RwireOhm) > 1e-12 {
		t.Errorf("WireR(100) = %g", got)
	}
	if got := p.WireCcouple(100); math.Abs(got-100*p.CcoupleFF) > 1e-12 {
		t.Errorf("WireCcouple(100) = %g", got)
	}
}

func TestDeviceTypeAndCornerStrings(t *testing.T) {
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Error("DeviceType.String mismatch")
	}
	if Typical.String() != "typical" || Fast.String() != "fast" || Slow.String() != "slow" {
		t.Error("Corner.String mismatch")
	}
	if StandardVt.String() != "svt" || LowVt.String() != "lvt" || HighVt.String() != "hvt" {
		t.Error("VtClass.String mismatch")
	}
	if DeviceType(99).String() == "" || Corner(99).String() == "" || VtClass(99).String() == "" {
		t.Error("out-of-range stringers should not be empty")
	}
}

// Property: Idsat is monotone nondecreasing in W and nonincreasing in L
// for any positive geometry.
func TestIdsatMonotoneProperty(t *testing.T) {
	p := CMOS075()
	f := func(w, l, dw, dl uint8) bool {
		wf := 0.5 + float64(w)/16 // [0.5, 16.4]
		lf := p.Lmin + float64(l)/64
		id := p.Idsat(NMOS, StandardVt, wf, lf, Typical)
		idW := p.Idsat(NMOS, StandardVt, wf+float64(dw)/16, lf, Typical)
		idL := p.Idsat(NMOS, StandardVt, wf, lf+float64(dl)/64, Typical)
		return idW >= id && idL <= id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: leakage is strictly decreasing in extra channel length.
func TestLeakageMonotoneProperty(t *testing.T) {
	p := CMOS035LP()
	f := func(e1, e2 uint8) bool {
		a, b := float64(e1)/1000, float64(e2)/1000
		if a > b {
			a, b = b, a
		}
		la := p.IleakUA(NMOS, LowVt, 10, a, Fast)
		lb := p.IleakUA(NMOS, LowVt, 10, b, Fast)
		return lb <= la
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
