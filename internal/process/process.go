// Package process models CMOS fabrication processes for the full-custom
// verification toolkit.
//
// The paper's tools consume extracted device and interconnect parameters;
// since the Digital Semiconductor processes are proprietary, this package
// provides parametric process descriptions calibrated to the numbers the
// paper publishes (a 0.75 µm, 3.45 V process for the ALPHA 21064 and a
// 0.35 µm, 1.5 V low-threshold process for the StrongARM SA-110).
//
// Everything downstream — timing, checks, power — consumes only the
// Process interface values here, so swapping a real foundry deck in would
// be a drop-in change.
package process

import (
	"fmt"
	"math"
)

// DeviceType distinguishes the two MOS device polarities.
type DeviceType int

const (
	// NMOS is an n-channel device (pulls its drain toward ground).
	NMOS DeviceType = iota
	// PMOS is a p-channel device (pulls its drain toward Vdd).
	PMOS
)

// String returns "nmos" or "pmos".
func (d DeviceType) String() string {
	switch d {
	case NMOS:
		return "nmos"
	case PMOS:
		return "pmos"
	default:
		return fmt.Sprintf("DeviceType(%d)", int(d))
	}
}

// Corner selects a manufacturing/environment corner for analysis.
//
// The paper (§4.3) stresses bounding min/max behaviour across
// manufacturing tolerances; every electrical query below accepts a Corner.
type Corner int

const (
	// Typical is the nominal process point.
	Typical Corner = iota
	// Fast is the fast-silicon corner: low Vt, high mobility, thin oxide.
	// Fast silicon maximizes leakage (§3: the 20 mW standby spec is
	// checked "in the fastest process corner") and minimizes delay,
	// so it is the corner that exposes races.
	Fast
	// Slow is the slow-silicon corner: high Vt, low mobility. It
	// maximizes delay, so it is the corner that exposes critical paths.
	Slow
)

// String returns the lowercase corner name.
func (c Corner) String() string {
	switch c {
	case Typical:
		return "typical"
	case Fast:
		return "fast"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("Corner(%d)", int(c))
	}
}

// Corners lists all corners in a stable order, for sweeps.
var Corners = []Corner{Typical, Fast, Slow}

// VtClass selects a threshold-voltage flavour. Low-Vt devices are fast
// but leaky; the StrongARM process is predominantly low-Vt (§3).
type VtClass int

const (
	// StandardVt is the nominal threshold device.
	StandardVt VtClass = iota
	// LowVt is the low-threshold, high-leakage device used for speed.
	LowVt
	// HighVt is a high-threshold, low-leakage device (used here to
	// model the lengthened/slowed devices in cache arrays and pads).
	HighVt
)

// String returns the class name.
func (v VtClass) String() string {
	switch v {
	case StandardVt:
		return "svt"
	case LowVt:
		return "lvt"
	case HighVt:
		return "hvt"
	default:
		return fmt.Sprintf("VtClass(%d)", int(v))
	}
}

// Process is a parametric CMOS process description. All geometric values
// are in micrometres (µm); voltages in volts; capacitances in femtofarads;
// resistances in ohms; currents in microamps unless noted.
type Process struct {
	// Name identifies the process (e.g. "cmos075").
	Name string
	// Lmin is the minimum drawn channel length in µm.
	Lmin float64
	// Vdd is the nominal supply voltage in volts.
	Vdd float64
	// VtN and VtP are the nominal (standard-Vt) threshold magnitudes
	// in volts for NMOS and PMOS devices.
	VtN, VtP float64
	// LowVtDelta is subtracted from |Vt| for LowVt devices; HighVtDelta
	// is added for HighVt devices.
	LowVtDelta, HighVtDelta float64
	// KPn and KPp are the process transconductances k' = µ·Cox in
	// µA/V² for NMOS and PMOS.
	KPn, KPp float64
	// CoxFF is the gate-oxide capacitance in fF per µm².
	CoxFF float64
	// CjFF is the source/drain junction capacitance in fF per µm of
	// device width.
	CjFF float64
	// CwireFF is wire capacitance to substrate in fF per µm of length
	// for a minimum-width mid-level metal wire.
	CwireFF float64
	// CcoupleFF is nominal sidewall coupling capacitance in fF per µm
	// of parallel run to an adjacent minimum-spaced wire.
	CcoupleFF float64
	// RwireOhm is wire resistance in Ω per µm of length for a
	// minimum-width mid-level metal wire.
	RwireOhm float64
	// SubthresholdSwing is the subthreshold slope in mV/decade.
	SubthresholdSwing float64
	// Ioff0 is the off-state leakage in µA per µm of width for a
	// minimum-length standard-Vt NMOS at Vgs=0, Vds=Vdd, typical corner.
	Ioff0 float64
	// LeakLengthFactor is the per-µm-of-extra-channel-length decades of
	// leakage reduction: lengthening a device by ΔL µm divides leakage
	// by 10^(LeakLengthFactor·ΔL). §3: devices "were lengthened by
	// 0.045µm or 0.09µm" to cut standby current.
	LeakLengthFactor float64
	// JmaxMA is the electromigration current-density limit in
	// mA per µm of wire width (time-averaged).
	JmaxMA float64
	// AntennaMaxRatio is the maximum allowed metal-area to gate-area
	// antenna ratio before plasma charging damage.
	AntennaMaxRatio float64
	// ClockFreqMHz is the nominal clock target used by flow-level
	// calculations (a design parameter recorded with the process here
	// because the paper quotes process+frequency pairs).
	ClockFreqMHz float64
}

// cornerScale returns (vtShift, kScale) for a corner: fast silicon has
// lower Vt and higher transconductance; slow the reverse. The ±10%/±60 mV
// spreads are typical of the era's published worst-case design practice.
func cornerScale(c Corner) (vtShift, kScale float64) {
	switch c {
	case Fast:
		return -0.06, 1.10
	case Slow:
		return +0.06, 0.90
	default:
		return 0, 1.0
	}
}

// Vt returns the threshold voltage magnitude in volts for a device of the
// given type and Vt class at the given corner.
func (p *Process) Vt(t DeviceType, class VtClass, c Corner) float64 {
	vt := p.VtN
	if t == PMOS {
		vt = p.VtP
	}
	switch class {
	case LowVt:
		vt -= p.LowVtDelta
	case HighVt:
		vt += p.HighVtDelta
	}
	shift, _ := cornerScale(c)
	vt += shift
	if vt < 0.05 {
		vt = 0.05
	}
	return vt
}

// KP returns the transconductance k' in µA/V² for the device type at the
// corner.
func (p *Process) KP(t DeviceType, c Corner) float64 {
	k := p.KPn
	if t == PMOS {
		k = p.KPp
	}
	_, scale := cornerScale(c)
	return k * scale
}

// Idsat returns the saturation drain current in µA of a device with the
// given geometry at full gate drive (Vgs = Vdd), using the long-channel
// square law. W and L are in µm.
func (p *Process) Idsat(t DeviceType, class VtClass, w, l float64, c Corner) float64 {
	vt := p.Vt(t, class, c)
	vgs := p.Vdd
	if vgs <= vt {
		return 0
	}
	kp := p.KP(t, c)
	return 0.5 * kp * (w / l) * (vgs - vt) * (vgs - vt)
}

// Reff returns the effective switching resistance in Ω of a device with
// the given geometry: the resistance that reproduces the device's average
// current over an output transition. This is the "simplified transistor
// timing model" of §4.3 — delay models "sacrifice accuracy for simulation
// efficiency" but are bounded per corner.
func (p *Process) Reff(t DeviceType, class VtClass, w, l float64, c Corner) float64 {
	id := p.Idsat(t, class, w, l, c) // µA
	if id <= 0 {
		return math.Inf(1)
	}
	// R ≈ (3/4)·Vdd/Idsat for a half-swing average, expressed in Ω
	// (volts / microamps = MΩ, so scale by 1e6).
	return 0.75 * p.Vdd / id * 1e6
}

// CgateFF returns the gate capacitance in fF of a device of width w and
// length l (both µm), including a fixed overlap allowance.
func (p *Process) CgateFF(w, l float64) float64 {
	const overlapFrac = 0.2
	return p.CoxFF * w * l * (1 + overlapFrac)
}

// CdiffFF returns the source/drain diffusion capacitance in fF for a
// device of width w µm.
func (p *Process) CdiffFF(w float64) float64 {
	return p.CjFF * w
}

// IleakUA returns the subthreshold (off-state) leakage in µA of a device
// at Vgs=0, Vds=Vdd. extraL is additional drawn channel length in µm
// beyond Lmin (the §3 lengthening knob). Leakage scales exponentially
// with Vt through the subthreshold swing and is divided by
// 10^(LeakLengthFactor·extraL) for lengthened devices.
func (p *Process) IleakUA(t DeviceType, class VtClass, w, extraL float64, c Corner) float64 {
	vtNom := p.Vt(t, StandardVt, Typical)
	vt := p.Vt(t, class, c)
	// Ioff0 is specified at nominal standard Vt; shift by the Vt delta
	// through the subthreshold swing (decades per volt = 1000/swing).
	decadesPerVolt := 1000.0 / p.SubthresholdSwing
	decades := (vtNom - vt) * decadesPerVolt
	// Channel-length lengthening: §3's 0.045/0.09 µm pulls.
	decades -= p.LeakLengthFactor * extraL
	i := p.Ioff0 * w * math.Pow(10, decades)
	// PMOS leakage is lower by the mobility ratio.
	if t == PMOS {
		i *= p.KPp / p.KPn
	}
	return i
}

// WireC returns the total capacitance in fF of a wire of length µm,
// excluding coupling (use WireCcouple for neighbours).
func (p *Process) WireC(length float64) float64 {
	return p.CwireFF * length
}

// WireCcouple returns the nominal sidewall coupling capacitance in fF to
// one minimum-spaced neighbour over a parallel run of length µm.
func (p *Process) WireCcouple(length float64) float64 {
	return p.CcoupleFF * length
}

// WireR returns the resistance in Ω of a wire of length µm at minimum
// width.
func (p *Process) WireR(length float64) float64 {
	return p.RwireOhm * length
}

// FO4ps returns the fanout-of-4 inverter delay in picoseconds at the
// given corner — the canonical speed metric for a process. It is computed
// from the Reff/Cgate models so it tracks any parameter change.
func (p *Process) FO4ps(c Corner) float64 {
	// Reference inverter: NMOS W=2·Lmin, PMOS W=4·Lmin at L=Lmin.
	wn := 2 * p.Lmin
	wp := 4 * p.Lmin
	rn := p.Reff(NMOS, StandardVt, wn, p.Lmin, c)
	rp := p.Reff(PMOS, StandardVt, wp, p.Lmin, c)
	r := (rn + rp) / 2
	cin := p.CgateFF(wn, p.Lmin) + p.CgateFF(wp, p.Lmin)
	cself := p.CdiffFF(wn) + p.CdiffFF(wp)
	// Delay = 0.69·R·(Cself + 4·Cin); R in Ω, C in fF → ps·1e-3, so
	// Ω·fF = 1e-15·s·1e0... Ω·fF = 1e-15 s = 1e-3 ps.
	return 0.69 * r * (cself + 4*cin) * 1e-3
}

// Validate checks that the process description is physically sensible.
func (p *Process) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("process: missing name")
	case p.Lmin <= 0:
		return fmt.Errorf("process %s: Lmin must be positive, got %g", p.Name, p.Lmin)
	case p.Vdd <= 0:
		return fmt.Errorf("process %s: Vdd must be positive, got %g", p.Name, p.Vdd)
	case p.VtN <= 0 || p.VtP <= 0:
		return fmt.Errorf("process %s: thresholds must be positive (VtN=%g VtP=%g)", p.Name, p.VtN, p.VtP)
	case p.VtN >= p.Vdd || p.VtP >= p.Vdd:
		return fmt.Errorf("process %s: thresholds must be below Vdd", p.Name)
	case p.KPn <= 0 || p.KPp <= 0:
		return fmt.Errorf("process %s: transconductances must be positive", p.Name)
	case p.KPp > p.KPn:
		return fmt.Errorf("process %s: PMOS k' (%g) should not exceed NMOS k' (%g)", p.Name, p.KPp, p.KPn)
	case p.SubthresholdSwing < 60:
		return fmt.Errorf("process %s: subthreshold swing %g mV/dec below the 60 mV/dec room-temperature limit", p.Name, p.SubthresholdSwing)
	case p.Ioff0 < 0:
		return fmt.Errorf("process %s: negative leakage", p.Name)
	}
	return nil
}

// CMOS075 returns the 0.75 µm, 3.45 V process model standing in for the
// ALPHA 21064 process (§3: "Starting with a 200MHz 21064 in 0.75
// technology … 3.45v, Power = 26W").
func CMOS075() *Process {
	return &Process{
		Name:              "cmos075",
		Lmin:              0.75,
		Vdd:               3.45,
		VtN:               0.7,
		VtP:               0.8,
		LowVtDelta:        0.15,
		HighVtDelta:       0.15,
		KPn:               60,
		KPp:               25,
		CoxFF:             2.0,
		CjFF:              1.2,
		CwireFF:           0.20,
		CcoupleFF:         0.06,
		RwireOhm:          0.07,
		SubthresholdSwing: 90,
		Ioff0:             1e-5,
		LeakLengthFactor:  12,
		JmaxMA:            1.0,
		AntennaMaxRatio:   400,
		ClockFreqMHz:      200,
	}
}

// CMOS035LP returns the 0.35 µm, 1.5 V low-power/low-threshold process
// model standing in for the StrongARM SA-110 process (§3: "a low-supply
// voltage and low-threshold device is essential … 160MHz while burning
// only 500mW", with leakage brought "below the 20mW specification in the
// fastest process corner" by channel lengthening).
func CMOS035LP() *Process {
	return &Process{
		Name:              "cmos035lp",
		Lmin:              0.35,
		Vdd:               1.5,
		VtN:               0.35,
		VtP:               0.40,
		LowVtDelta:        0.12,
		HighVtDelta:       0.12,
		KPn:               260,
		KPp:               105,
		CoxFF:             4.0,
		CjFF:              1.0,
		CwireFF:           0.23,
		CcoupleFF:         0.09,
		RwireOhm:          0.12,
		SubthresholdSwing: 85,
		Ioff0:             4e-4,
		LeakLengthFactor:  14,
		JmaxMA:            1.2,
		AntennaMaxRatio:   400,
		ClockFreqMHz:      160,
	}
}

// CMOS050 returns a 0.5 µm, 3.3 V process standing in for the ALPHA 21164
// generation (ref [3]: 433 MHz quad-issue).
func CMOS050() *Process {
	return &Process{
		Name:              "cmos050",
		Lmin:              0.5,
		Vdd:               3.3,
		VtN:               0.6,
		VtP:               0.7,
		LowVtDelta:        0.15,
		HighVtDelta:       0.15,
		KPn:               100,
		KPp:               40,
		CoxFF:             2.7,
		CjFF:              1.1,
		CwireFF:           0.21,
		CcoupleFF:         0.07,
		RwireOhm:          0.09,
		SubthresholdSwing: 88,
		Ioff0:             5e-5,
		LeakLengthFactor:  13,
		JmaxMA:            1.1,
		AntennaMaxRatio:   400,
		ClockFreqMHz:      433,
	}
}

// ByName returns a built-in process by name, or an error listing the
// known names.
func ByName(name string) (*Process, error) {
	switch name {
	case "cmos075":
		return CMOS075(), nil
	case "cmos050":
		return CMOS050(), nil
	case "cmos035lp":
		return CMOS035LP(), nil
	}
	return nil, fmt.Errorf("process: unknown process %q (known: cmos075, cmos050, cmos035lp)", name)
}
