// Package repro is a full-custom CMOS design and verification toolkit in
// Go — an open reproduction of "Designing High Performance CMOS
// Microprocessors Using Full Custom Techniques" (Grundmann, Dobberpuhl,
// Allmon, Rethman; DAC 1997).
//
// The library lives under internal/: the transistor netlist substrate,
// circuit recognition, switch-level and FCL RTL simulation, shadow-mode
// co-simulation, equivalence checking, the §4.2 electrical check battery,
// static timing with race analysis, the §3 power/leakage models, logical
// effort sizing, macrocell layout assist, and the CBV methodology engine.
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmarks in bench_test.go regenerate
// every table and figure; `go run ./cmd/repro` prints them.
package repro
