// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment; see DESIGN.md §3 for the index). Run with:
//
//	go test -bench=. -benchmem
//
// Each bench reports experiment-specific metrics via b.ReportMetric so
// the shape of the paper's result is visible straight from the bench
// output (factors, races, model errors, cycles/sec, leakage mW, ...).
package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/process"
)

// BenchmarkTable1PowerWalk regenerates Table 1: the ALPHA 21064 →
// StrongARM power walk (26 W → ≈0.46 W in five factor steps).
func BenchmarkTable1PowerWalk(b *testing.B) {
	var total, final float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		total, final = r.TotalFactor, r.FinalW
	}
	b.ReportMetric(total, "reduction-x")
	b.ReportMetric(final*1000, "final-mW")
}

// BenchmarkFigure1HierarchyOverlap regenerates Figure 1: the irregular
// overlap of RTL and schematic hierarchies.
func BenchmarkFigure1HierarchyOverlap(b *testing.B) {
	var frag int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		frag = r.Overlap.MaxFragmentation()
	}
	b.ReportMetric(float64(frag), "max-rtl-blocks-spanned")
}

// BenchmarkFigure2DesignFlow regenerates Figure 2: the flow DAG with its
// bottom-to-top feedback iterations.
func BenchmarkFigure2DesignFlow(b *testing.B) {
	var iters int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		iters = r.Result.Iterations
	}
	b.ReportMetric(float64(iters), "feedback-passes")
}

// BenchmarkFigure3DynamicNoise regenerates Figure 3: the per-source
// noise budget of dynamic nodes (coupling, charge share, leakage).
func BenchmarkFigure3DynamicNoise(b *testing.B) {
	var findings int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		findings = 0
		for _, s := range r.PerSource {
			findings += s.Findings
		}
	}
	b.ReportMetric(float64(findings), "noise-findings")
}

// BenchmarkFigure4TimingRaces regenerates Figure 4: critical paths limit
// frequency; race paths break the chip at any frequency.
func BenchmarkFigure4TimingRaces(b *testing.B) {
	var races int
	var minPeriod float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		races = r.RacyRaces
		minPeriod = r.MinPeriodPS
	}
	b.ReportMetric(float64(races), "races-caught")
	b.ReportMetric(minPeriod, "adder-min-period-ps")
}

// BenchmarkFigure5DistributedGate regenerates Figure 5: the error of the
// lumped single-port gate model vs the distributed multi-finger reality.
func BenchmarkFigure5DistributedGate(b *testing.B) {
	var worstErr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		worstErr = 0
		for _, row := range r.Rows {
			if row.ErrPct > worstErr {
				worstErr = row.ErrPct
			}
		}
	}
	b.ReportMetric(worstErr, "lumped-model-error-%")
}

// BenchmarkS1SimThroughput measures FCL cycles/sec against §4.1's
// ">200 cycles per second per simulation CPU".
func BenchmarkS1SimThroughput(b *testing.B) {
	var rate, cpus float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.S1()
		if err != nil {
			b.Fatal(err)
		}
		rate, cpus = r.CyclesPerSec, r.CPUsAtOurRate
	}
	b.ReportMetric(rate, "cycles/sec")
	b.ReportMetric(cpus, "cpus-for-2e9/day")
}

// BenchmarkS2LeakageLengthening regenerates the §3 leakage story: the
// 0.045/0.09 µm channel pulls vs the 20 mW standby spec.
func BenchmarkS2LeakageLengthening(b *testing.B) {
	var at0, at90 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.S2()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.Corner != process.Fast {
				continue
			}
			switch p.ExtraLUM {
			case 0:
				at0 = p.LeakageMW
			case 0.09:
				at90 = p.LeakageMW
			}
		}
	}
	b.ReportMetric(at0, "leak-mW-unlengthened")
	b.ReportMetric(at90, "leak-mW-0.09um")
}

// BenchmarkS3SequentialEquiv regenerates §4.1's counter vs shift-register
// equivalence check.
func BenchmarkS3SequentialEquiv(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		r, err := experiments.S3()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Result.Equivalent {
			b.Fatal("equivalence broken")
		}
		states = r.Result.StatesExplored
	}
	b.ReportMetric(float64(states), "joint-states")
}

// BenchmarkS4CAMPrimitive regenerates §4.1's 2000-port CAM cost
// comparison: the native primitive vs the gate-level expansion.
func BenchmarkS4CAMPrimitive(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.S4()
		if err != nil {
			b.Fatal(err)
		}
		slowdown = r.Rows[len(r.Rows)-1].Slowdown
	}
	b.ReportMetric(slowdown, "expansion-slowdown-x@2048")
}

// BenchmarkS5CheckBattery runs the full §4.2 battery + CBV/CBC
// comparison over the design zoo and reports the filter effectiveness.
func BenchmarkS5CheckBattery(b *testing.B) {
	var fe float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.S5()
		if err != nil {
			b.Fatal(err)
		}
		fe = r.FilterEffectiveness
	}
	b.ReportMetric(fe*100, "auto-pass-%")
}

// BenchmarkS6PessimismTradeoff sweeps the §4.3 min/max bounding
// pessimism and reports the trade-off endpoints.
func BenchmarkS6PessimismTradeoff(b *testing.B) {
	var falseHits, races float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.S6()
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		falseHits = float64(last.FalseSetupHits)
		races = float64(last.RacesFlagged)
	}
	b.ReportMetric(falseHits, "false-violations@max-pessimism")
	b.ReportMetric(races, "races-caught")
}

// BenchmarkFingerprint measures the structural-hash throughput the
// fleet cache keys on (SRAMArray(64,32) ≈ a few thousand devices).
func BenchmarkFingerprint(b *testing.B) {
	c := designs.SRAMArray(64, 32, 0)
	b.ReportMetric(float64(len(c.Devices)), "devices")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Fingerprint()
	}
}

// BenchmarkFleetCorpus measures full-corpus CBV verification through
// the fleet driver: cold-cache designs/sec at -j 1 and -j 8 (speedup-x
// is bounded by GOMAXPROCS), plus the warm-cache hit rate of a second
// pass over an already-verified design.
func BenchmarkFleetCorpus(b *testing.B) {
	corpus := func() []fleet.Item {
		return []fleet.Item{
			{Name: "invchain", Circuit: designs.InverterChain(12)},
			{Name: "adder16", Circuit: designs.DominoAdder(16)},
			{Name: "pipeline", Circuit: designs.LatchPipeline(6, false)},
			{Name: "sram16x8", Circuit: designs.SRAMArray(16, 8, 0.09)},
			{Name: "passmux8", Circuit: designs.PassMux(8)},
		}
	}
	opts := func(j int) fleet.Options {
		return fleet.Options{
			Core:    core.Options{Proc: process.CMOS075()},
			Workers: j,
			Cache:   fleet.NewCache(),
		}
	}
	var rate1, rate8, hitPct float64
	for i := 0; i < b.N; i++ {
		items := corpus()
		t1 := time.Now()
		rep := fleet.Verify(items, opts(1))
		rate1 = float64(len(items)) / time.Since(t1).Seconds()
		if rep.HasViolations() {
			b.Fatal("corpus failed to verify")
		}
		t8 := time.Now()
		fleet.Verify(items, opts(8))
		rate8 = float64(len(items)) / time.Since(t8).Seconds()

		sram := []fleet.Item{{Name: "sram64x32", Circuit: designs.SRAMArray(64, 32, 0)}}
		warm := opts(1)
		fleet.Verify(sram, warm)
		second := fleet.Verify(sram, warm)
		hitPct = 100 * float64(second.Hits) / float64(second.Hits+second.Misses)
	}
	b.ReportMetric(rate1, "designs/sec-j1")
	b.ReportMetric(rate8, "designs/sec-j8")
	b.ReportMetric(rate8/rate1, "speedup-x")
	b.ReportMetric(hitPct, "cache-hit-%")
}
