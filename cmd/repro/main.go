// Command repro regenerates every table and figure of the paper
// ("Designing High Performance CMOS Microprocessors Using Full Custom
// Techniques", DAC 1997) from the toolkit's models, printing the same
// rows the paper reports plus the paper's values for comparison.
//
// Usage:
//
//	repro            # run everything (the EXPERIMENTS.md content)
//	repro t1 f4 s2   # run selected experiments
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// runners maps experiment ids to their run functions.
var runners = map[string]func() (string, error){
	"t1": func() (string, error) { r, err := experiments.Table1(); return rep(r, err) },
	"f1": func() (string, error) { r, err := experiments.Figure1(); return rep(r, err) },
	"f2": func() (string, error) { r, err := experiments.Figure2(); return rep(r, err) },
	"f3": func() (string, error) { r, err := experiments.Figure3(); return rep(r, err) },
	"f4": func() (string, error) { r, err := experiments.Figure4(); return rep(r, err) },
	"f5": func() (string, error) { r, err := experiments.Figure5(); return rep(r, err) },
	"s1": func() (string, error) { r, err := experiments.S1(); return rep(r, err) },
	"s2": func() (string, error) { r, err := experiments.S2(); return rep(r, err) },
	"s3": func() (string, error) { r, err := experiments.S3(); return rep(r, err) },
	"s4": func() (string, error) { r, err := experiments.S4(); return rep(r, err) },
	"s5": func() (string, error) { r, err := experiments.S5(); return rep(r, err) },
	"s6": func() (string, error) { r, err := experiments.S6(); return rep(r, err) },
	"a1": func() (string, error) { r, err := experiments.A1(); return rep(r, err) },
	"a2": func() (string, error) { r, err := experiments.A2(); return rep(r, err) },
}

// rep unwraps the (result, err) pair into (report, err).
func rep(r interface{ ReportString() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.ReportString(), nil
}

// order lists experiments in paper order.
var order = []string{"t1", "f1", "f2", "f3", "f4", "f5", "s1", "s2", "s3", "s4", "s5", "s6", "a1", "a2"}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = order
	}
	failed := false
	for _, id := range args {
		run, ok := runners[strings.ToLower(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (known: %s)\n", id, strings.Join(order, " "))
			os.Exit(2)
		}
		out, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(out)
	}
	if failed {
		os.Exit(1)
	}
}
