package main

import (
	"bytes"
	"strings"
	"testing"
)

// runAnalyzer invokes the CLI entry point over the given package args
// and returns (stdout, exit code).
func runAnalyzer(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return out.String(), code
}

// TestSeededViolations proves the analyzer catches every hazard class:
// each seeded finding in testdata/seeded fires its documented rule, and
// nothing else fires.
func TestSeededViolations(t *testing.T) {
	out, code := runAnalyzer(t, "testdata/seeded")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	want := []string{
		"seeded.go:10:2: DET003",  // math/rand import
		"seeded.go:18:3: DET001",  // range over map param into Fprintf
		"seeded.go:28:3: DET001",  // range over countMap field into WriteString
		"seeded.go:34:7: DET002",  // time.Now
		"seeded.go:35:12: DET002", // time.Since
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(want) {
		t.Fatalf("findings = %d, want %d:\n%s", len(lines), len(want), out)
	}
	for i, w := range want {
		if !strings.Contains(lines[i], w) {
			t.Errorf("line %d = %q, want it to contain %q", i, lines[i], w)
		}
	}
}

// TestCleanPatterns pins the false-positive budget at zero: the
// collect-sort-emit cure, map reductions and first-error validation
// loops must all pass.
func TestCleanPatterns(t *testing.T) {
	out, code := runAnalyzer(t, "testdata/clean")
	if code != 0 {
		t.Errorf("exit = %d, want 0; findings:\n%s", code, out)
	}
}

// TestRepoIsClean is the self-host gate: the analyzer over the whole
// repository (the same invocation CI runs) reports nothing. The walker
// skips testdata, so the seeded fixtures don't count.
func TestRepoIsClean(t *testing.T) {
	out, code := runAnalyzer(t, "../../...")
	if code != 0 {
		t.Errorf("repo not clean (exit %d):\n%s", code, out)
	}
}

// TestDeterministicOutput runs the seeded scan twice and requires
// byte-identical reports — the linter must hold itself to the contract
// it enforces.
func TestDeterministicOutput(t *testing.T) {
	a, _ := runAnalyzer(t, "testdata/seeded", "testdata/clean")
	b, _ := runAnalyzer(t, "testdata/clean", "testdata/seeded")
	if a != b {
		t.Errorf("argument order changed the report:\n--- a\n%s--- b\n%s", a, b)
	}
}

// TestUsageExit pins the CLI contract: no args is usage (2), a missing
// directory is an operational error (2).
func TestUsageExit(t *testing.T) {
	if _, code := runAnalyzer(t); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if _, code := runAnalyzer(t, "nosuchdir"); code != 2 {
		t.Errorf("missing dir: exit = %d, want 2", code)
	}
}
