package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// exemptDir is the one package allowed to touch the wall clock and own
// a random source: it *is* the sanctioned seam the rules funnel
// everything through.
const exemptDir = "internal/obs"

// expandPackages resolves the command-line arguments to a sorted list
// of Go files. "./..." (or any argument ending in "...") walks the tree
// rooted at its prefix; anything else is a single directory. Vendored
// trees, testdata fixtures and hidden directories are skipped — testdata
// holds the seeded violations the tests feed back through analyzeFiles.
func expandPackages(root string, args []string) ([]string, error) {
	join := func(p string) string {
		if filepath.IsAbs(p) {
			return filepath.Clean(p)
		}
		return filepath.Join(root, p)
	}
	dirs := map[string]bool{}
	for _, a := range args {
		if strings.HasSuffix(a, "...") {
			base := join(strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/"))
			err := filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				dirs[p] = true
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dirs[join(a)] = true
	}
	var files []string
	for d := range dirs {
		ents, err := os.ReadDir(d)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
				continue
			}
			files = append(files, filepath.Join(d, n))
		}
	}
	sort.Strings(files)
	return files, nil
}

// finding is one diagnostic, formatted path:line:col: RULE message.
type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.rule, f.msg)
}

// analyzeFiles parses and checks every file, returning findings sorted
// by (file, line, col, rule) so the report is byte-stable.
func analyzeFiles(files []string) ([]string, error) {
	fset := token.NewFileSet()
	var findings []finding
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		exempt := strings.Contains(filepath.ToSlash(path), exemptDir+"/")
		findings = append(findings, checkFile(fset, f, exempt)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.rule < b.rule
	})
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.String()
	}
	return out, nil
}

// checkFile runs the three rules over one parsed file.
func checkFile(fset *token.FileSet, f *ast.File, exempt bool) []finding {
	var out []finding

	// DET003: math/rand import. Checked on the import table, not call
	// sites — the unseeded global source makes every use suspect.
	if !exempt {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				out = append(out, finding{fset.Position(imp.Pos()), "DET003",
					"math/rand outside internal/obs: use obs.NewRNG (pinned, replayable stream)"})
			}
		}
	}

	// timeAliases: local names bound to the time package (usually just
	// "time", but honor renames).
	timeAliases := map[string]bool{}
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "time" {
			name := "time"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			timeAliases[name] = true
		}
	}

	mapVars := collectMapVars(f)

	ast.Inspect(f, func(n ast.Node) bool {
		// DET002: time.Now / time.Since calls.
		if !exempt {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && timeAliases[id.Name] &&
						(sel.Sel.Name == "Now" || sel.Sel.Name == "Since") {
						out = append(out, finding{fset.Position(call.Pos()), "DET002",
							fmt.Sprintf("time.%s outside internal/obs: use obs.Now() so the volatile-field set stays auditable", sel.Sel.Name)})
					}
				}
			}
		}

		// DET001: range over a map feeding a writer. Applies everywhere,
		// internal/obs included — ordered output is everyone's contract.
		rng, ok := n.(*ast.RangeStmt)
		if !ok || rng.Body == nil {
			return true
		}
		if !looksLikeMap(rng.X, mapVars) {
			return true
		}
		if pos, sink := firstOutputSink(rng.Body); sink != "" {
			out = append(out, finding{fset.Position(pos), "DET001",
				fmt.Sprintf("range over map feeds %s: iteration order is random — collect keys, sort, then emit", sink)})
		}
		return true
	})
	return out
}

// collectMapVars gathers every identifier the file *declares* with a
// map type: function parameters and results, var specs, struct fields,
// and short declarations initialized from make(map...) or a map
// literal. Scopes are flattened file-wide — good enough for a linter
// where a rare same-name shadow costs one manual review, not a miss.
func collectMapVars(f *ast.File) map[string]bool {
	vars := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fd := range fl.List {
			if _, ok := fd.Type.(*ast.MapType); ok {
				for _, n := range fd.Names {
					vars[n.Name] = true
				}
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Type != nil {
				addFields(d.Type.Params)
				addFields(d.Type.Results)
			}
		case *ast.StructType:
			addFields(d.Fields)
		case *ast.ValueSpec:
			if _, ok := d.Type.(*ast.MapType); ok {
				for _, id := range d.Names {
					vars[id.Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range d.Rhs {
				if i >= len(d.Lhs) {
					break
				}
				if isMapExpr(rhs) {
					if id, ok := d.Lhs[i].(*ast.Ident); ok {
						vars[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return vars
}

// isMapExpr reports whether an expression is syntactically map-typed:
// a map literal or make(map[...]...).
func isMapExpr(x ast.Expr) bool {
	switch e := x.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// looksLikeMap reports whether a ranged expression is a map: declared
// map-typed in this file (collectMapVars), a map literal or make call,
// or an identifier/selector whose name follows the repo's map naming
// conventions (the cross-file fallback — full go/types resolution is
// off the table in a zero-dependency build). Conservative on purpose:
// a miss is a missed warning, a false positive blocks CI.
func looksLikeMap(x ast.Expr, mapVars map[string]bool) bool {
	if isMapExpr(x) {
		return true
	}
	switch e := x.(type) {
	case *ast.Ident:
		return mapVars[e.Name] || mapName(e.Name)
	case *ast.SelectorExpr:
		return mapVars[e.Sel.Name] || mapName(e.Sel.Name)
	default:
		return false
	}
}

// mapName reports whether an identifier follows the repo's map naming
// conventions: a "By"-keyed index (diagsByCell), an explicit Map/map
// suffix, a seen/dedup set, or one of the known map-valued fields.
func mapName(name string) bool {
	if strings.Contains(name, "By") && !strings.HasPrefix(name, "By") {
		return true
	}
	lower := strings.ToLower(name)
	for _, suf := range []string{"map", "set", "seen", "index", "byid"} {
		if strings.HasSuffix(lower, suf) {
			return true
		}
	}
	switch lower {
	case "seen", "waived", "counts", "tallies", "clocks", "known", "inferred":
		return true
	}
	return false
}

// firstOutputSink scans a loop body for the earliest direct output
// call: fmt.Fprint*/Print*, a Write/WriteString/Encode method call, or
// a builder/writer WriteByte/WriteRune. Appending to a slice is NOT a
// sink — the idiomatic fix (collect, sort, emit) looks exactly like
// that, and flagging it would outlaw the cure.
func firstOutputSink(body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" &&
			(strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
			pos, sink = call.Pos(), "fmt."+name
			return false
		}
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			pos, sink = call.Pos(), "."+name
			return false
		}
		return true
	})
	return pos, sink
}
