// Package clean exercises every pattern that superficially resembles a
// hazard but is the sanctioned fix — the analyzer must stay silent on
// all of it (false positives block CI).
package clean

import (
	"fmt"
	"io"
	"sort"
)

// EmitSorted is the DET001 cure: collect keys, sort, then emit. The
// range over the map only appends; the writer sees the sorted slice.
func EmitSorted(w io.Writer, tallies map[string]int) {
	keys := make([]string, 0, len(tallies))
	for k := range tallies { // append-only: not a sink
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // slice range: ordered
		fmt.Fprintf(w, "%s=%d\n", k, tallies[k])
	}
}

// Accumulate ranges a map into another map — reductions are
// order-independent, not output.
func Accumulate(in map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range in {
		out[k] += v
	}
	return out
}

// FirstError mirrors the manifest validators: a map range whose body
// only constructs errors. fmt.Errorf is not an output sink.
func FirstError(fields map[string]any) error {
	for k, v := range fields {
		if v == nil {
			return fmt.Errorf("field %q is nil", k)
		}
	}
	return nil
}
