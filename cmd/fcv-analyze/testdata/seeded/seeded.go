// Package seeded holds one deliberate instance of every determinism
// hazard fcv-analyze hunts. The test suite runs the analyzer over this
// directory and asserts each rule fires at its documented line; the
// walker skips testdata, so the repo-wide CI run never sees these.
package seeded

import (
	"fmt"
	"io"
	"math/rand" // DET003: rand import outside internal/obs
	"time"
)

// EmitTallies ranges a map straight into a writer — DET001 twice: the
// parameter is declared map-typed, and the field's name says Map.
func EmitTallies(w io.Writer, tallies map[string]int) {
	for k, v := range tallies { // DET001 (declared map type)
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

type report struct {
	countMap map[string]int
}

func (r report) dump(w io.Writer) {
	for k := range r.countMap { // DET001 (map naming convention)
		io.WriteString(w, k)
	}
}

// Stamp reads the wall clock directly — DET002 for Now and Since.
func Stamp() (time.Time, time.Duration) {
	t := time.Now()         // DET002
	return t, time.Since(t) // DET002
}

// Roll uses the unseeded global source — the import is the DET003
// finding; this use is why the import rule exists.
func Roll() int {
	return rand.Intn(6)
}
