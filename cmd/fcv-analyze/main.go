// fcv-analyze is a determinism linter for this repository's own Go
// source. The verification pipeline promises byte-identical reports,
// manifests and event streams at any worker count; that promise dies
// quietly whenever a map iteration feeds a writer or a wall-clock read
// sneaks outside the sanctioned seam. This tool makes those hazards a
// CI failure instead of a flaky diff three sessions later.
//
// Three rules, all syntactic (stdlib go/ast only — the module has no
// dependencies, so golang.org/x/tools/go/analysis is off the table):
//
//	DET001  range over a map whose loop body writes output directly
//	        (fmt.Fprint*/Print*, Write/WriteString, json Encode) —
//	        iteration order is random, the output is not. Collect keys,
//	        sort, then emit.
//	DET002  time.Now / time.Since outside internal/obs — the clock
//	        enters through obs.Now() so the volatile field set stays
//	        auditable.
//	DET003  math/rand import outside internal/obs — seeded streams come
//	        from obs.RNG, whose sequence is pinned across Go releases.
//
// Usage:
//
//	go run ./cmd/fcv-analyze ./...
//	go run ./cmd/fcv-analyze internal/lint cmd/fcv
//
// Exit codes: 0 clean, 1 findings, 2 usage/parse errors. Findings print
// one per line as path:line:col: RULE message, sorted, so the output is
// itself deterministic.
package main

import (
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw interface{ Write([]byte) (int, error) }) int {
	if len(args) == 0 {
		fmt.Fprintln(errw, "usage: fcv-analyze <packages>  (e.g. ./...)")
		return 2
	}
	files, err := expandPackages(".", args)
	if err != nil {
		fmt.Fprintln(errw, "fcv-analyze:", err)
		return 2
	}
	findings, err := analyzeFiles(files)
	if err != nil {
		fmt.Fprintln(errw, "fcv-analyze:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(errw, "fcv-analyze: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
