package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// TestVerifyCacheDirEndToEnd: two verify runs sharing -cache-dir — the
// second replays every result from disk and its manifest carries the
// disk-hit counters the CI warm-cache gate asserts on.
func TestVerifyCacheDirEndToEnd(t *testing.T) {
	deck := writeDeck(t, invDeck)
	dir := t.TempDir()
	m1 := filepath.Join(t.TempDir(), "cold.json")
	m2 := filepath.Join(t.TempDir(), "warm.json")
	if err := run("verify", []string{"-quiet", "-cache-dir", dir, "-manifest", m1, deck}); err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	if err := run("verify", []string{"-quiet", "-cache-dir", dir, "-manifest", m2, deck}); err != nil {
		t.Fatalf("warm verify: %v", err)
	}
	cold, err := obs.ReadManifestFile(m1)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := obs.ReadManifestFile(m2)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Counters["fleet.diskcache.miss"] != 1 || cold.Counters["fleet.diskcache.hit"] != 0 {
		t.Errorf("cold counters: %v", cold.Counters)
	}
	if warm.Counters["fleet.diskcache.hit"] != 1 || warm.Counters["fleet.diskcache.miss"] != 0 {
		t.Errorf("warm counters: %v", warm.Counters)
	}
	// The warm manifest's corpus half is identical to the cold one's
	// modulo the documented volatile fields.
	if len(warm.Items) != len(cold.Items) {
		t.Fatalf("item count %d vs %d", len(warm.Items), len(cold.Items))
	}
	for i := range warm.Items {
		w, c := warm.Items[i], cold.Items[i]
		if w.Name != c.Name || w.Fingerprint != c.Fingerprint || w.Verdict != c.Verdict {
			t.Errorf("item %d differs: %+v vs %+v", i, w, c)
		}
		if len(w.Findings) != len(c.Findings) {
			t.Fatalf("item %d: %d findings warm, %d cold", i, len(w.Findings), len(c.Findings))
		}
		for j := range w.Findings {
			if w.Findings[j].ID != c.Findings[j].ID {
				t.Errorf("item %d finding %d: %s vs %s", i, j, w.Findings[j].ID, c.Findings[j].ID)
			}
		}
	}
	if warm.Verdicts != cold.Verdicts {
		t.Errorf("verdict tallies differ: %+v vs %+v", warm.Verdicts, cold.Verdicts)
	}
}

// TestVerifyCacheDirEnvFallback: FCV_CACHE_DIR enables the persistent
// layer when -cache-dir is absent.
func TestVerifyCacheDirEnvFallback(t *testing.T) {
	deck := writeDeck(t, invDeck)
	dir := t.TempDir()
	t.Setenv("FCV_CACHE_DIR", dir)
	if err := run("verify", []string{"-quiet", deck}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	d, err := fleet.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 {
		t.Errorf("env-configured cache holds %d entries, want 1", st.Entries)
	}
}

// TestCacheSubcommand pins the stats/gc surface and its exit-code
// contract (errors out of run() become exit 2 in main).
func TestCacheSubcommand(t *testing.T) {
	deck := writeDeck(t, invDeck)
	dir := t.TempDir()
	if err := run("verify", []string{"-quiet", "-cache-dir", dir, deck}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	t.Setenv("FCV_CACHE_DIR", "")

	if err := run("cache", []string{"stats", dir}); err != nil {
		t.Errorf("cache stats: %v", err)
	}
	// JSON stats round-trip through the exported DiskStats shape.
	outFile, err := os.CreateTemp(t.TempDir(), "stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := runCache([]string{"stats", "-json", dir}, outFile); err != nil {
		t.Fatalf("cache stats -json: %v", err)
	}
	outFile.Close()
	raw, err := os.ReadFile(outFile.Name())
	if err != nil {
		t.Fatal(err)
	}
	var st fleet.DiskStats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats -json output not valid JSON: %v\n%s", err, raw)
	}
	if st.Entries != 1 || st.Bytes == 0 {
		t.Errorf("stats -json: %+v", st)
	}

	if err := run("cache", []string{"gc", "-max-bytes", "0", dir}); err != nil {
		t.Errorf("cache gc: %v", err)
	}
	d, _ := fleet.OpenDiskCache(dir)
	if st2, _ := d.Stats(); st2.Entries != 0 {
		t.Errorf("gc -max-bytes 0 left %d entries", st2.Entries)
	}

	// Operational failures: missing verb, unknown verb, no directory,
	// nonexistent directory, missing -max-bytes. None are findings, so
	// isFindings must be false (exit 2, not 1).
	for _, bad := range [][]string{
		nil,
		{"prune"},
		{"stats"},
		{"stats", filepath.Join(dir, "nosuch")},
		{"gc", dir},
	} {
		err := run("cache", bad)
		if err == nil {
			t.Errorf("cache %v accepted", bad)
		} else if isFindings(err) {
			t.Errorf("cache %v classified as findings: %v", bad, err)
		}
	}
}
