package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeDeck drops a SPICE deck into a temp dir.
func writeDeck(t *testing.T, contents string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "deck.sp")
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const invDeck = `
.subckt inv a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends
x1 in mid inv
x2 mid out inv
`

func TestLoadFlatTopElements(t *testing.T) {
	flat, err := loadFlat([]string{writeDeck(t, invDeck)})
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Devices) != 4 {
		t.Errorf("devices = %d, want 4", len(flat.Devices))
	}
}

func TestLoadFlatNamedTop(t *testing.T) {
	deck := ".subckt cell a y\nmn y a vss vss nmos w=2 l=0.75\nmp y a vdd vdd pmos w=4 l=0.75\n.ends\n"
	flat, err := loadFlat([]string{writeDeck(t, deck), "cell"})
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Devices) != 2 {
		t.Errorf("devices = %d", len(flat.Devices))
	}
	if _, err := loadFlat([]string{writeDeck(t, deck), "nosuch"}); err == nil {
		t.Error("unknown top accepted")
	}
}

func TestLoadFlatAllSubcktsPicksLast(t *testing.T) {
	deck := ".subckt a p\nmn p vdd vss vss nmos w=2 l=0.75\n.ends\n" +
		".subckt b p\nmn p vdd vss vss nmos w=2 l=0.75\n.ends\n"
	flat, err := loadFlat([]string{writeDeck(t, deck)})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Name != "b.flat" {
		t.Errorf("top = %s, want b.flat (last cell)", flat.Name)
	}
}

func TestRunSubcommands(t *testing.T) {
	deck := writeDeck(t, invDeck)
	for _, cmd := range []string{"verify", "recog", "checks", "timing", "layout", "cbc"} {
		if err := run(cmd, []string{deck}); err != nil {
			t.Errorf("%s: %v", cmd, err)
		}
	}
	if err := run("power", nil); err != nil {
		t.Errorf("power: %v", err)
	}
	if err := run("nonsense", []string{deck}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run("verify", nil); err == nil {
		t.Error("missing deck accepted")
	}
}

func TestRunSim(t *testing.T) {
	src := "module top( -> c[8])\nreg r[8] @phi1\non phi1: r <= r + 1\nassign c = r\nendmodule\n"
	path := filepath.Join(t.TempDir(), "cnt.fcl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("sim", []string{path, "10"}); err != nil {
		t.Errorf("sim: %v", err)
	}
	if err := run("sim", []string{path, "x"}); err == nil {
		t.Error("bad cycle count accepted")
	}
	if err := run("sim", []string{path}); err == nil {
		t.Error("missing cycle count accepted")
	}
}

func TestRunVerifyFleetModes(t *testing.T) {
	deck := writeDeck(t, invDeck)
	// Flags + multiple decks + per-cell corpus.
	if err := run("verify", []string{"-j", "2", deck}); err != nil {
		t.Errorf("verify -j 2: %v", err)
	}
	if err := run("verify", []string{"-cells", "-quiet", deck}); err != nil {
		t.Errorf("verify -cells: %v", err)
	}
	if err := run("verify", []string{"-cache=false", deck, deck}); err != nil {
		t.Errorf("verify two decks: %v", err)
	}
	// Named top still works as the trailing positional.
	namedDeck := writeDeck(t, ".subckt cell a y\nmn y a vss vss nmos w=2 l=0.75\nmp y a vdd vdd pmos w=4 l=0.75\n.ends\n")
	if err := run("verify", []string{namedDeck, "cell"}); err != nil {
		t.Errorf("verify named top: %v", err)
	}
	if err := run("verify", []string{"-cells", namedDeck, "cell"}); err == nil {
		t.Error("top name with -cells accepted")
	}
}

func TestRunBenchWritesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("bench subcommand times real workloads")
	}
	out := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := run("bench", []string{"-out", out, "-cycles", "2000"}); err != nil {
		t.Fatalf("bench: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var m BenchMetrics
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if m.RTLCyclesPerSec <= 0 || m.FleetDesignsPerSecJ1 <= 0 {
		t.Errorf("non-positive throughput metrics: %+v", m)
	}
	if m.CacheHitPct < 90 {
		t.Errorf("second-pass cache hit = %.0f%%, want >= 90", m.CacheHitPct)
	}
}
