package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/process"
	"repro/internal/serve"
	"repro/internal/timing"
)

// benchServe is the `fcv bench -serve` load harness: it boots an
// in-process serve.Server on a loopback listener and drives it with
// -serve-clients concurrent HTTP clients, each POSTing -serve-reqs
// decks round-robin from a small generated corpus. Every deck's first
// touch is a cold verification; repeats warm out of the daemon's
// singleflight cache, so the measured mix covers both paths — the same
// profile a CI fleet hammering one shared daemon produces. Results
// land in the Serve* fields of m.
func benchServe(m *BenchMetrics, clients, reqsPerClient int) error {
	decks, err := serveBenchDecks()
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Core: core.Options{Proc: process.CMOS075(), Clock: timing.TwoPhase(3000)},
		// Queue sized for the burst: every client may be waiting at once.
		Workers: runtime.GOMAXPROCS(0),
		Queue:   clients * reqsPerClient,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: serve.New(cfg)}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/verify"

	lat := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	t0 := obs.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			client := &http.Client{}
			for i := 0; i < reqsPerClient; i++ {
				deck := decks[(c+i)%len(decks)]
				r0 := obs.Now()
				resp, err := client.Post(url, "text/plain", bytes.NewReader(deck))
				if err != nil {
					errs[c] = err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// 200 and 422 are both completed verifications (422 means
				// the design has violations — some corpus members do under
				// the timed config); anything else is a harness failure.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
					errs[c] = fmt.Errorf("request %d: status %d, want 200 or 422", i, resp.StatusCode)
					return
				}
				lat[c] = append(lat[c], float64(obs.Now().Sub(r0).Microseconds())/1000)
			}
		}(c)
	}
	close(start)
	wg.Wait()
	wallSec := obs.Now().Sub(t0).Seconds()
	for c, err := range errs {
		if err != nil {
			return fmt.Errorf("serve bench client %d: %w", c, err)
		}
	}

	var all []float64
	for _, ls := range lat {
		all = append(all, ls...)
	}
	sort.Float64s(all)
	m.ServeClients = clients
	m.ServeRequestsPerSec = float64(len(all)) / wallSec
	m.ServeP50MS = latQuantile(all, 0.50)
	m.ServeP99MS = latQuantile(all, 0.99)
	return nil
}

// serveBenchDecks renders a corpus of structurally distinct designs as
// SPICE decks, the wire format the daemon actually parses — so the
// measurement includes the parse cost a real client pays, not just the
// verification behind it.
func serveBenchDecks() ([][]byte, error) {
	circuits := []*netlist.Circuit{
		designs.InverterChain(12),
		designs.InverterChain(24),
		designs.DominoAdder(8),
		designs.DominoAdder(16),
		designs.LatchPipeline(6, false),
		designs.LatchPipeline(10, false),
		designs.SRAMArray(8, 4, 0.09),
		designs.PassMux(8),
	}
	decks := make([][]byte, len(circuits))
	for i, c := range circuits {
		var buf bytes.Buffer
		if err := netlist.Write(&buf, nil, c); err != nil {
			return nil, err
		}
		decks[i] = buf.Bytes()
	}
	return decks, nil
}

// latQuantile reads quantile q from an already-sorted latency slice.
func latQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
