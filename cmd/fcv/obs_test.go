package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/obs"
	"repro/internal/process"
)

// captureVerify runs runVerify with output captured to a file and the
// manifest written to a temp path, returning (output text, manifest).
func captureVerify(t *testing.T, args []string) (string, *obs.Manifest) {
	t.Helper()
	dir := t.TempDir()
	mpath := filepath.Join(dir, "m.json")
	outFile, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	proc, err := process.ByName("cmos075")
	if err != nil {
		t.Fatal(err)
	}
	full := append([]string{"-manifest", mpath}, args...)
	if err := runVerify(full, proc, 1e6/proc.ClockFreqMHz, outFile); err != nil {
		t.Fatalf("runVerify: %v", err)
	}
	text, err := os.ReadFile(outFile.Name())
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateManifest(data); err != nil {
		t.Fatalf("manifest fails its own schema: %v", err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return string(text), &m
}

// stripVolatile zeroes the duration/timestamp fields, gauges and
// histogram contents — the documented run-variable half of the
// manifest. Histogram *names and bucket layout* are deterministic, so
// they are kept; only the wall-clock-derived counts and sums are masked.
func stripVolatile(m *obs.Manifest) {
	m.WallMS = 0
	for i := range m.Items {
		m.Items[i].ElapsedMS = 0
	}
	for i := range m.Stages {
		m.Stages[i].DurMS = 0
	}
	m.Gauges = map[string]float64{}
	for k, h := range m.Histograms {
		m.Histograms[k] = obs.Histogram{Counts: make([]int64, len(h.Counts))}
	}
}

// TestVerifyManifestEndToEnd is the acceptance check in miniature:
// the manifest validates, its counters match the printed cache totals
// exactly, its top-level stage durations cover most of the wall time,
// and it is byte-identical across runs modulo the volatile fields.
func TestVerifyManifestEndToEnd(t *testing.T) {
	deck := writeDeck(t, invDeck)
	args := []string{"-j", "4", "-cells", deck}
	text, m := captureVerify(t, args)

	// Counters vs the report's printed totals.
	re := regexp.MustCompile(`cache hits=(\d+) misses=(\d+)`)
	match := re.FindStringSubmatch(text)
	if match == nil {
		t.Fatalf("no cache totals in output:\n%s", text)
	}
	hits, _ := strconv.Atoi(match[1])
	misses, _ := strconv.Atoi(match[2])
	if m.Counters["fleet.cache.hits"] != int64(hits) || m.Counters["fleet.cache.misses"] != int64(misses) {
		t.Errorf("manifest counters hits=%d misses=%d, printed %d/%d",
			m.Counters["fleet.cache.hits"], m.Counters["fleet.cache.misses"], hits, misses)
	}

	// Per-stage durations must account for most of the wall clock.
	if m.WallMS > 0 && m.StageTotalMS() < 0.7*m.WallMS {
		t.Errorf("top-level stages %.3fms cover <70%% of wall %.3fms", m.StageTotalMS(), m.WallMS)
	}
	if m.ConfigKey == "" {
		t.Error("empty config key")
	}
	if len(m.Items) == 0 || m.Items[0].Fingerprint == "" {
		t.Errorf("items missing fingerprints: %+v", m.Items)
	}

	// Determinism modulo volatile fields.
	_, m2 := captureVerify(t, args)
	stripVolatile(m)
	stripVolatile(m2)
	b1, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("manifest not deterministic modulo volatile fields:\n--- run1 ---\n%s\n--- run2 ---\n%s", b1, b2)
	}
}

// TestVerifyTraceFlag smoke-tests -trace through the subcommand
// dispatcher (output goes to the process stdout).
func TestVerifyTraceFlag(t *testing.T) {
	deck := writeDeck(t, invDeck)
	if err := run("verify", []string{"-trace", "-quiet", deck}); err != nil {
		t.Errorf("verify -trace: %v", err)
	}
	if err := run("verify", []string{"-pprof-labels", "-quiet", deck}); err != nil {
		t.Errorf("verify -pprof-labels: %v", err)
	}
}

// TestManifestCheckCommand exercises valid, invalid and schema-print
// paths with their exit-code contracts.
func TestManifestCheckCommand(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	// A real manifest validates.
	deck := writeDeck(t, invDeck)
	mpath := filepath.Join(dir, "m.json")
	proc, _ := process.ByName("cmos075")
	if err := runVerify([]string{"-manifest", mpath, "-quiet", deck}, proc, 5000, devnull); err != nil {
		t.Fatal(err)
	}
	if err := runManifestCheck([]string{mpath}, devnull); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}

	// Garbage is the exit-1 family.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = runManifestCheck([]string{bad}, devnull)
	if !errors.Is(err, errManifestInvalid) {
		t.Errorf("invalid manifest error = %v, want errManifestInvalid", err)
	}
	if !isFindings(err) {
		t.Error("manifest invalidity not in the exit-1 family")
	}

	// Missing file is operational (exit 2).
	err = runManifestCheck([]string{filepath.Join(dir, "missing.json")}, devnull)
	if err == nil || errors.Is(err, errManifestInvalid) {
		t.Errorf("missing file error = %v, want operational failure", err)
	}

	// -print-schema emits the pinned schema bytes.
	schemaOut, err := os.CreateTemp(dir, "schema")
	if err != nil {
		t.Fatal(err)
	}
	defer schemaOut.Close()
	if err := runManifestCheck([]string{"-print-schema"}, schemaOut); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(schemaOut.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(obs.SchemaJSON()) {
		t.Error("-print-schema diverges from obs.SchemaJSON")
	}
}

// writeMetrics drops a BenchMetrics JSON for trend tests.
func writeMetrics(t *testing.T, dir, name string, m BenchMetrics) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTrendGate exercises the tolerance logic: within-tolerance and
// improvements pass, a past-tolerance drop fails with the exit-1
// marker, and a missing baseline passes.
func TestTrendGate(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	base := writeMetrics(t, dir, "base.json", BenchMetrics{
		RTLCyclesPerSec: 1000, FleetDesignsPerSecJ1: 100, FleetDesignsPerSecJN: 400,
	})

	// 20% drop: inside ±30%, passes.
	ok := writeMetrics(t, dir, "ok.json", BenchMetrics{
		RTLCyclesPerSec: 800, FleetDesignsPerSecJ1: 90, FleetDesignsPerSecJN: 500,
	})
	if err := runTrend([]string{"-baseline", base, ok}, devnull); err != nil {
		t.Errorf("within-tolerance run failed: %v", err)
	}

	// 50% drop on one metric: regression.
	badPath := writeMetrics(t, dir, "bad.json", BenchMetrics{
		RTLCyclesPerSec: 500, FleetDesignsPerSecJ1: 100, FleetDesignsPerSecJN: 400,
	})
	err = runTrend([]string{"-baseline", base, badPath}, devnull)
	if !errors.Is(err, errTrendRegression) {
		t.Errorf("regression error = %v, want errTrendRegression", err)
	}

	// Tighter tolerance flips the 20% drop into a failure.
	err = runTrend([]string{"-baseline", base, "-tolerance", "10", ok}, devnull)
	if !errors.Is(err, errTrendRegression) {
		t.Errorf("tolerance 10 error = %v, want errTrendRegression", err)
	}

	// Missing baseline: first run passes.
	if err := runTrend([]string{"-baseline", filepath.Join(dir, "none.json"), ok}, devnull); err != nil {
		t.Errorf("missing baseline failed: %v", err)
	}

	// Zero-valued baseline metrics are skipped, not divided by.
	empty := writeMetrics(t, dir, "empty.json", BenchMetrics{})
	if err := runTrend([]string{"-baseline", empty, ok}, devnull); err != nil {
		t.Errorf("empty baseline failed: %v", err)
	}
}

// TestBenchManifest runs the bench with -manifest and validates the
// result (shortened workload).
func TestBenchManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("bench subcommand times real workloads")
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "B.json")
	mPath := filepath.Join(dir, "bm.json")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := runBench([]string{"-out", outPath, "-cycles", "1000", "-manifest", mPath}, devnull); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateManifest(data); err != nil {
		t.Errorf("bench manifest invalid: %v", err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counters["rtl.cycles"] != 1000 {
		t.Errorf("rtl.cycles = %d, want 1000", m.Counters["rtl.cycles"])
	}
	if m.Gauges["bench.rtl_cycles_per_sec"] <= 0 {
		t.Error("bench throughput gauge missing")
	}
	if m.Tool != "fcv bench" {
		t.Errorf("tool = %q", m.Tool)
	}
}
