package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/process"
	"repro/internal/serve"
	"repro/internal/timing"
)

// runServe is the serve subcommand: the long-lived verification daemon.
//
//	fcv serve [-addr 127.0.0.1:8117] [-pool N] [-queue N] [-cache-dir d] [-lint] [-paths]
//	          [-access-log f.jsonl] [-slow-ms N] [-drain-timeout 30s]
//
// The daemon keeps the in-memory (and, with -cache-dir, on-disk)
// verification caches warm across requests and answers:
//
//	POST /verify        deck in the body (or ?path= with -paths) -> run manifest JSON
//	GET  /stats         daemon counters (admissions, cache traffic, latency quantiles)
//	GET  /metrics       Prometheus text exposition of the full telemetry surface
//	GET  /debug/traces  slow-trace index; /debug/traces/{id} is one rendered span tree
//	GET  /healthz       liveness (503 once draining)
//
// Every /verify response carries an X-Fcv-Trace header; -access-log
// appends one JSON line per request (trace, status, duration, deck
// sha256, verdict, cache traffic, queue wait) and -slow-ms retains the
// full span tree of requests over the threshold for /debug/traces.
//
// SIGTERM/SIGINT begin a graceful drain: /healthz flips to 503, new
// verifications are refused, in-flight requests finish (bounded by
// -drain-timeout), then the process exits 0.
func runServe(args []string, proc *process.Process, period float64, out *os.File) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8117", "listen address (host:port; port 0 picks a free one)")
	pool := fs.Int("pool", 0, "global worker-token pool shared by all requests (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max requests waiting for admission before 429 (0 = 4x pool)")
	cacheDir := fs.String("cache-dir", os.Getenv("FCV_CACHE_DIR"), "persistent result cache directory (default $FCV_CACHE_DIR; empty = memory only)")
	lintGate := fs.Bool("lint", false, "run the static lint gate on every request (requests may also opt in with ?lint=1)")
	paths := fs.Bool("paths", false, "allow ?path= requests to read decks from this machine's filesystem")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	accessLog := fs.String("access-log", "", "append one JSON line per /verify request to this file")
	slowMS := fs.Float64("slow-ms", 0, "retain the span tree of requests slower than this many ms at /debug/traces (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{
		Core:           core.Options{Proc: proc, Clock: timing.TwoPhase(period), Lint: *lintGate},
		Workers:        *pool,
		Queue:          *queue,
		AllowPathDecks: *paths,
		SlowMS:         *slowMS,
	}
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	if *cacheDir != "" {
		d, err := fleet.OpenDiskCache(*cacheDir)
		if err != nil {
			return err
		}
		cfg.DiskCache = d
	}
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	// The "listening" line is the startup handshake: CI and scripts wait
	// for it (or poll /healthz) before sending traffic.
	fmt.Fprintf(out, "fcv serve: listening on http://%s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(out, "fcv serve: %v — draining\n", sig)
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("serve: drain: %w", err)
		}
		fmt.Fprintln(out, "fcv serve: drained")
		return nil
	}
}
