package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/fleet"
)

// runCache is the cache subcommand: inspect or shrink a persistent
// verification result cache directory.
//
//	fcv cache stats [-json] [dir]
//	fcv cache gc -max-bytes N [dir]
//
// The directory defaults to $FCV_CACHE_DIR. stats reports the entry
// count and total bytes; gc evicts least-recently-used entries until
// the directory fits in -max-bytes (0 empties it). Exit codes: 0 ok,
// 2 operational failure (no directory given, unreadable directory,
// missing -max-bytes).
func runCache(args []string, out *os.File) error {
	if len(args) < 1 {
		return fmt.Errorf("cache needs a verb: stats or gc")
	}
	verb, args := args[0], args[1:]
	switch verb {
	case "stats":
		fs := flag.NewFlagSet("cache stats", flag.ContinueOnError)
		asJSON := fs.Bool("json", false, "emit stats as JSON")
		if err := fs.Parse(args); err != nil {
			return err
		}
		d, err := openCacheDir(fs.Args())
		if err != nil {
			return err
		}
		st, err := d.Stats()
		if err != nil {
			return err
		}
		if *asJSON {
			b, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(b))
			return nil
		}
		fmt.Fprintf(out, "cache %s: %d entries, %d bytes\n", st.Dir, st.Entries, st.Bytes)
		return nil

	case "gc":
		fs := flag.NewFlagSet("cache gc", flag.ContinueOnError)
		maxBytes := fs.Int64("max-bytes", -1, "evict LRU entries until the cache fits this many bytes (0 = empty it)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *maxBytes < 0 {
			return fmt.Errorf("cache gc needs -max-bytes")
		}
		d, err := openCacheDir(fs.Args())
		if err != nil {
			return err
		}
		removed, freed, err := d.GC(*maxBytes)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cache %s: evicted %d entries, freed %d bytes\n", d.Dir(), removed, freed)
		return nil
	}
	return fmt.Errorf("cache: unknown verb %q (want stats or gc)", verb)
}

// openCacheDir resolves the cache directory from the remaining
// arguments or $FCV_CACHE_DIR. Unlike OpenDiskCache it refuses to
// create the directory: inspecting a cache should not conjure one.
func openCacheDir(rest []string) (*fleet.DiskCache, error) {
	dir := os.Getenv("FCV_CACHE_DIR")
	if len(rest) > 0 {
		dir = rest[0]
	}
	if dir == "" {
		return nil, fmt.Errorf("cache: no directory (give one or set FCV_CACHE_DIR)")
	}
	if info, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	} else if !info.IsDir() {
		return nil, fmt.Errorf("cache: %s is not a directory", dir)
	}
	return fleet.OpenDiskCache(dir)
}
