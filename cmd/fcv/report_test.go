package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureReport runs runReport with output captured to a temp file.
func captureReport(t *testing.T, args []string) string {
	t.Helper()
	outFile, err := os.CreateTemp(t.TempDir(), "report")
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	if err := runReport(args, outFile); err != nil {
		t.Fatalf("runReport(%v): %v", args, err)
	}
	text, err := os.ReadFile(outFile.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(text)
}

// TestReportText renders a real run manifest as text and checks every
// section the tentpole names: waterfall, slowest cells, cache ratio,
// histogram quantiles and findings grouped by check with evidence.
func TestReportText(t *testing.T) {
	dir := t.TempDir()
	clean := writeDeck(t, multiCellDeck)
	mpath, _ := verifyToManifest(t, dir, "rep", "2", "-lint", "-cells", clean, brokenDeck)

	out := captureReport(t, []string{mpath})
	for _, want := range []string{
		"run report: fcv verify",
		"verdicts:",
		"cache:",
		"slowest",
		"per-cell stage waterfall",
		"recognize", // a stage row under some cell
		"duration distributions",
		"fleet.item_ms",
		"findings by check",
		"lint/",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

// TestReportHTML checks the HTML rendering is one self-contained page:
// full document, no external references, findings and IDs present,
// cell names escaped.
func TestReportHTML(t *testing.T) {
	dir := t.TempDir()
	mpath, _ := verifyToManifest(t, dir, "html", "2", "-lint", "-cells", brokenDeck)

	out := captureReport(t, []string{"-html", mpath})
	if !strings.HasPrefix(out, "<!DOCTYPE html>") || !strings.Contains(out, "</html>") {
		t.Error("not a complete HTML document")
	}
	for _, banned := range []string{"<script", "src=", "href=", "@import"} {
		if strings.Contains(out, banned) {
			t.Errorf("HTML report is not self-contained: found %q", banned)
		}
	}
	if !strings.Contains(out, "findings by check") || !strings.Contains(out, "lint/") {
		t.Errorf("HTML report missing findings section:\n%s", out)
	}

	// -o writes the same bytes to a file.
	hpath := filepath.Join(dir, "report.html")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := runReport([]string{"-html", "-o", hpath, mpath}, devnull); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(hpath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out {
		t.Error("-o file differs from stdout rendering")
	}
}

// TestReportTopN checks -top truncates the slowest-items table.
func TestReportTopN(t *testing.T) {
	dir := t.TempDir()
	clean := writeDeck(t, multiCellDeck)
	mpath, _ := verifyToManifest(t, dir, "topn", "1", "-cells", clean)

	out := captureReport(t, []string{"-top", "1", mpath})
	if !strings.Contains(out, "slowest 1 item(s)") {
		t.Errorf("-top 1 not honoured:\n%s", out)
	}
}

// TestReportOperationalFailure checks unreadable input exits 2.
func TestReportOperationalFailure(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	err = runReport([]string{"/nonexistent/m.json"}, devnull)
	if err == nil || isFindings(err) {
		t.Errorf("unreadable manifest = %v, want operational failure", err)
	}
}
