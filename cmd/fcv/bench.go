package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/fleet"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/process"
	"repro/internal/recognize"
	"repro/internal/rtl"
	"repro/internal/switchsim"
	"repro/internal/timing"
)

// BenchMetrics is the JSON shape of `fcv bench -out BENCH_fleet.json`:
// the repo's headline performance numbers in machine-readable form, so
// CI can archive them per commit.
type BenchMetrics struct {
	// GOMAXPROCS records the parallelism available to the run; the
	// fleet speedup is bounded by it. FleetWorkersJN is the worker
	// count the -jN measurement actually ran with (the fleet clamps
	// workers to the corpus size, so the two can differ).
	GOMAXPROCS     int `json:"gomaxprocs"`
	FleetWorkersJN int `json:"fleet_workers_jn"`
	// RTLCyclesPerSec is the switch/RTL simulation throughput of the S1
	// pipeline workload (the paper's 200 cycles/sec yardstick).
	RTLCyclesPerSec float64 `json:"rtl_cycles_per_sec"`
	// FleetDesignsPerSecJ1 and JN are cold-cache corpus verification
	// rates at 1 worker and at GOMAXPROCS workers.
	FleetDesignsPerSecJ1 float64 `json:"fleet_designs_per_sec_j1"`
	FleetDesignsPerSecJN float64 `json:"fleet_designs_per_sec_jn"`
	// FleetSpeedup is JN/J1.
	FleetSpeedup float64 `json:"fleet_speedup"`
	// CacheHitPct is the cache hit percentage of a second pass over an
	// already-verified design (the memoization headline; 100 when every
	// lookup hits).
	CacheHitPct float64 `json:"cache_hit_pct"`
	// DiskColdDesignsPerSec and DiskWarmDesignsPerSec measure the
	// persistent cache: one run populating an empty cache directory,
	// then a fresh process-equivalent run replaying from it.
	// DiskWarmSpeedup is warm/cold — the incremental-verification win.
	DiskColdDesignsPerSec float64 `json:"disk_cold_designs_per_sec"`
	DiskWarmDesignsPerSec float64 `json:"disk_warm_designs_per_sec"`
	DiskWarmSpeedup       float64 `json:"disk_warm_speedup"`
	// AllocsPerOp* pin the hot kernels' allocation behaviour (the same
	// workloads as the per-package alloc-regression tests).
	AllocsFingerprint float64 `json:"allocs_per_op_fingerprint"`
	AllocsRecognize   float64 `json:"allocs_per_op_recognize"`
	AllocsTiming      float64 `json:"allocs_per_op_timing"`
	AllocsSettle      float64 `json:"allocs_per_op_settle"`
	// VectorsPerSec is the packed switch-level settle throughput in
	// stimulus vectors per second (64 lanes per settle) on the clocked
	// domino-adder kernel; ScalarVectorsPerSec is the scalar oracle on
	// the identical step, and LaneParallelSpeedup is their ratio — the
	// per-settle bit-parallel win, independent of goroutine count.
	VectorsPerSec       float64 `json:"vectors_per_sec"`
	ScalarVectorsPerSec float64 `json:"scalar_vectors_per_sec"`
	LaneParallelSpeedup float64 `json:"lane_parallel_speedup"`
	// CyclesPerDay extrapolates the measured block-parallel packed-RTL
	// rate (blocks x 64 lanes x LaneBlockWorkers goroutines on the S1
	// pipeline) to a day — the paper's §4.1 farm yardstick (~2e9
	// cycles/day across ~100 CPUs). LaneBlockWorkers is the worker count
	// that measurement actually ran with (GOMAXPROCS clamped to the
	// block count), so the baseline says unambiguously how much
	// goroutine scaling the figure includes.
	CyclesPerDay     float64 `json:"cycles_per_day"`
	LaneBlockWorkers int     `json:"lane_block_workers"`
	// LaneBlockSpeedup divides the block-parallel rate above by the same
	// workload pinned to one worker goroutine — the multi-core scaling
	// factor of the lane-block scheduler, separate from the per-settle
	// bit-parallel win.
	LaneBlockSpeedup float64 `json:"lane_block_speedup"`
	// Hier* measure hierarchical incremental verification on the deep
	// tree corpus (designs.DeepTree): HierColdDesignsPerSec verifies the
	// whole hierarchy against an empty cache; HierEditOneLeafReverifyPerSec
	// re-verifies after a scripted one-leaf edit against the warm shared
	// cache, so only the edited leaf and its root path recompute.
	// HierIncrementalSpeedup is warm/cold — the edit-one-leaf headline.
	HierColdDesignsPerSec         float64 `json:"hier_cold_designs_per_sec"`
	HierEditOneLeafReverifyPerSec float64 `json:"hier_edit_one_leaf_reverify_per_sec"`
	HierIncrementalSpeedup        float64 `json:"hier_incremental_speedup"`
	// Serve* metrics exist only when the run included the -serve load
	// harness: ServeClients concurrent HTTP clients POSTing decks at an
	// in-process `fcv serve` daemon. RequestsPerSec counts completed
	// round-trips; P50/P99 are client-observed request latencies in
	// milliseconds (lower is better — the trend gate watches them with
	// the inequality reversed). omitempty keeps plain `fcv bench`
	// artifacts free of the keys so trend's key-drift skip applies.
	ServeClients        int     `json:"serve_clients,omitempty"`
	ServeRequestsPerSec float64 `json:"serve_requests_per_sec,omitempty"`
	ServeP50MS          float64 `json:"serve_p50_ms,omitempty"`
	ServeP99MS          float64 `json:"serve_p99_ms,omitempty"`
}

// benchZoo is the corpus the fleet numbers are measured over: the S5
// design zoo swept across sizes so every item has a distinct structural
// fingerprint. With ~24 members the -jN pass keeps every worker busy
// long enough for fleet_speedup to measure parallel scaling rather
// than pool startup.
func benchZoo() []fleet.Item {
	var items []fleet.Item
	add := func(name string, c *netlist.Circuit) {
		items = append(items, fleet.Item{Name: name, Circuit: c})
	}
	for _, n := range []int{8, 12, 16, 24, 32, 48} {
		add(fmt.Sprintf("invchain%d", n), designs.InverterChain(n))
	}
	for _, bits := range []int{8, 12, 16, 20, 24, 32} {
		add(fmt.Sprintf("adder%d", bits), designs.DominoAdder(bits))
	}
	for _, stages := range []int{4, 6, 8, 10, 12, 14} {
		add(fmt.Sprintf("pipeline%d", stages), designs.LatchPipeline(stages, false))
	}
	add("sram8x4", designs.SRAMArray(8, 4, 0.09))
	add("sram16x8", designs.SRAMArray(16, 8, 0.09))
	add("sram16x16", designs.SRAMArray(16, 16, 0.09))
	for _, n := range []int{4, 8, 16} {
		add(fmt.Sprintf("passmux%d", n), designs.PassMux(n))
	}
	return items
}

// runBench measures the headline metrics in-process and writes them as
// JSON:
//
//	fcv bench [-out BENCH_fleet.json] [-cycles N] [-manifest m.json]
//
// -manifest additionally writes a run manifest (the same schema as
// `fcv verify -manifest`) carrying the bench's telemetry: RTL cycle
// counters and per-phase timings, fleet spans and cache counters, and
// the headline metrics as gauges.
func runBench(args []string, out *os.File) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	outPath := fs.String("out", "BENCH_fleet.json", "metrics JSON output path (\"-\" for stdout)")
	cycles := fs.Int("cycles", 20000, "RTL cycles to time")
	reps := fs.Int("reps", 3, "repetitions per measurement (best rate wins)")
	manifestPath := fs.String("manifest", "", "write a run-manifest JSON to this path")
	serveLoad := fs.Bool("serve", false, "also load-test an in-process fcv serve daemon")
	serveClients := fs.Int("serve-clients", 16, "concurrent clients for -serve")
	serveReqs := fs.Int("serve-reqs", 8, "requests per client for -serve")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		*reps = 1
	}
	var col *obs.Collector
	if *manifestPath != "" {
		col = obs.New()
	}
	benchStart := obs.Now()
	m := BenchMetrics{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// RTL simulation throughput (the S1 workload, shortened).
	prog, err := rtl.ParseString(designs.PipelineRTL())
	if err != nil {
		return err
	}
	sim, err := rtl.NewSim(prog)
	if err != nil {
		return err
	}
	img := make([]uint64, 64)
	for i := range img {
		img[i] = uint64(i*2557) & 0xffff
	}
	if err := sim.LoadMem("imem", img); err != nil {
		return err
	}
	if err := sim.Set("run", 1); err != nil {
		return err
	}
	// Each measurement below is repeated -reps times and the best rate
	// wins: scheduling noise on a shared host only ever slows a run
	// down, so the max is the least-biased estimate and keeps the trend
	// gate from firing on machine load. Telemetry observes the first
	// rep only, so manifest counters do not scale with -reps.
	sim.Run(*cycles / 10) // warm-up
	sim.SetObserver(col)
	for r := 0; r < *reps; r++ {
		start := obs.Now()
		sim.Run(*cycles)
		if rate := float64(*cycles) / obs.Now().Sub(start).Seconds(); rate > m.RTLCyclesPerSec {
			m.RTLCyclesPerSec = rate
		}
		sim.SetObserver(nil)
	}

	// Bit-parallel lane throughput: the packed settle versus the scalar
	// oracle on the same clocked domino-adder step. One packed settle
	// carries 64 independent stimulus lanes, so the packed pass counts
	// 64 vectors where the scalar pass counts one.
	laneSteps := *cycles / 50
	if laneSteps < 300 {
		laneSteps = 300
	}
	scal, err := switchsim.New(designs.DominoAdder(16))
	if err != nil {
		return err
	}
	scal.Settle()
	for r := 0; r < *reps; r++ {
		t0 := obs.Now()
		for i := 0; i < laneSteps; i++ {
			scal.SetQuiet("phi", switchsim.Lo)
			scal.Settle()
			scal.SetQuiet("a0", switchsim.Bool(i%2 == 0))
			scal.SetQuiet("b0", switchsim.Hi)
			scal.SetQuiet("phi", switchsim.Hi)
			scal.Settle()
		}
		if rate := float64(laneSteps) / obs.Now().Sub(t0).Seconds(); rate > m.ScalarVectorsPerSec {
			m.ScalarVectorsPerSec = rate
		}
	}
	packed, err := switchsim.NewPacked(designs.DominoAdder(16))
	if err != nil {
		return err
	}
	packed.Settle()
	packed.SetObserver(col)
	for r := 0; r < *reps; r++ {
		t0 := obs.Now()
		for i := 0; i < laneSteps; i++ {
			packed.SetQuietAll("phi", switchsim.Lo)
			packed.Settle()
			lanes := uint64(i+1) * 0x9e3779b97f4a7c15
			packed.SetQuietLanes("a0", lanes, ^lanes)
			packed.SetQuietAll("b0", switchsim.Hi)
			packed.SetQuietAll("phi", switchsim.Hi)
			packed.Settle()
		}
		if rate := float64(laneSteps*switchsim.Lanes) / obs.Now().Sub(t0).Seconds(); rate > m.VectorsPerSec {
			m.VectorsPerSec = rate
		}
		packed.SetObserver(nil)
	}
	if m.ScalarVectorsPerSec > 0 {
		m.LaneParallelSpeedup = m.VectorsPerSec / m.ScalarVectorsPerSec
	}

	// Block-parallel packed RTL on the S1 pipeline: independent 64-lane
	// blocks across goroutine workers, extrapolated to cycles/day.
	pipeDesign, err := rtl.Elaborate(prog)
	if err != nil {
		return err
	}
	bcfg := rtl.BlockConfig{
		Blocks: 4 * m.GOMAXPROCS,
		Cycles: *cycles / 40,
		Seed:   9,
		Inputs: []string{"run"},
	}
	if bcfg.Cycles < 50 {
		bcfg.Cycles = 50
	}
	m.LaneBlockWorkers = m.GOMAXPROCS
	if m.LaneBlockWorkers > bcfg.Blocks {
		m.LaneBlockWorkers = bcfg.Blocks
	}
	for r := 0; r < *reps; r++ {
		o := col
		if r > 0 {
			o = nil
		}
		t0 := obs.Now()
		if _, err := rtl.RunBlocks(pipeDesign, bcfg, o); err != nil {
			return err
		}
		laneCycles := float64(bcfg.Blocks) * float64(bcfg.Cycles) * rtl.Lanes
		if rate := laneCycles / obs.Now().Sub(t0).Seconds() * 86400; rate > m.CyclesPerDay {
			m.CyclesPerDay = rate
		}
	}
	// The same block set pinned to one worker goroutine is the serial
	// baseline for the multi-core scaling factor.
	var laneBlockSerial float64
	bcfg1 := bcfg
	bcfg1.Workers = 1
	for r := 0; r < *reps; r++ {
		t0 := obs.Now()
		if _, err := rtl.RunBlocks(pipeDesign, bcfg1, nil); err != nil {
			return err
		}
		laneCycles := float64(bcfg1.Blocks) * float64(bcfg1.Cycles) * rtl.Lanes
		if rate := laneCycles / obs.Now().Sub(t0).Seconds() * 86400; rate > laneBlockSerial {
			laneBlockSerial = rate
		}
	}
	if laneBlockSerial > 0 {
		m.LaneBlockSpeedup = m.CyclesPerDay / laneBlockSerial
	}

	// Cold-cache fleet rates at -j 1 and -j GOMAXPROCS.
	opts := func(j int) fleet.Options {
		return fleet.Options{
			Core:    core.Options{Proc: process.CMOS075()},
			Workers: j,
			Cache:   fleet.NewCache(),
			Obs:     col,
		}
	}
	items := benchZoo()
	var coldRep *fleet.Report
	for r := 0; r < *reps; r++ {
		o := opts(1)
		if r > 0 {
			o.Obs = nil
		}
		t1 := obs.Now()
		rep := fleet.Verify(items, o)
		if r == 0 {
			coldRep = rep
		}
		if rate := float64(len(items)) / obs.Now().Sub(t1).Seconds(); rate > m.FleetDesignsPerSecJ1 {
			m.FleetDesignsPerSecJ1 = rate
		}
	}
	for r := 0; r < *reps; r++ {
		o := opts(m.GOMAXPROCS)
		if r > 0 {
			o.Obs = nil
		}
		tn := obs.Now()
		rep := fleet.Verify(items, o)
		m.FleetWorkersJN = rep.Workers
		if rate := float64(len(items)) / obs.Now().Sub(tn).Seconds(); rate > m.FleetDesignsPerSecJN {
			m.FleetDesignsPerSecJN = rate
		}
	}
	if m.FleetDesignsPerSecJ1 > 0 {
		m.FleetSpeedup = m.FleetDesignsPerSecJN / m.FleetDesignsPerSecJ1
	}

	// Persistent-cache throughput: populate an empty directory cold,
	// then replay it warm with fresh in-memory state — the same contract
	// as two fcv processes sharing -cache-dir.
	diskDir, err := os.MkdirTemp("", "fcv-bench-cache")
	if err != nil {
		return err
	}
	defer os.RemoveAll(diskDir)
	for r := 0; r < *reps; r++ {
		if err := os.RemoveAll(diskDir); err != nil {
			return err
		}
		dc, err := fleet.OpenDiskCache(diskDir)
		if err != nil {
			return err
		}
		o := opts(1)
		o.Obs, o.DiskCache = nil, dc
		t0 := obs.Now()
		fleet.Verify(items, o)
		if rate := float64(len(items)) / obs.Now().Sub(t0).Seconds(); rate > m.DiskColdDesignsPerSec {
			m.DiskColdDesignsPerSec = rate
		}
		dcw, err := fleet.OpenDiskCache(diskDir)
		if err != nil {
			return err
		}
		ow := opts(1)
		ow.Obs, ow.DiskCache = nil, dcw
		t0 = obs.Now()
		fleet.Verify(items, ow)
		if rate := float64(len(items)) / obs.Now().Sub(t0).Seconds(); rate > m.DiskWarmDesignsPerSec {
			m.DiskWarmDesignsPerSec = rate
		}
	}
	if m.DiskColdDesignsPerSec > 0 {
		m.DiskWarmSpeedup = m.DiskWarmDesignsPerSec / m.DiskColdDesignsPerSec
	}

	// Hierarchical incremental verification on the deep-tree corpus: one
	// cold pass builds the whole hierarchy against an empty cache; warm
	// passes re-verify scripted one-leaf edits (each rep a distinct
	// tweak, so every pass honestly misses the edited leaf plus its root
	// path) against the shared cache. Their ratio is the edit-one-leaf
	// incremental win.
	const hierLevels, hierVariants = 3, 20
	hierOpts := func(c *fleet.Cache) fleet.Options {
		return fleet.Options{
			Core:    core.Options{Proc: process.CMOS075()},
			Workers: m.GOMAXPROCS,
			Cache:   c,
		}
	}
	for r := 0; r < *reps; r++ {
		lib, top := designs.DeepTree(hierLevels, hierVariants, 0)
		t0 := obs.Now()
		if _, err := fleet.VerifyHier(lib, lib.Cell(top), hierOpts(fleet.NewCache())); err != nil {
			return err
		}
		if rate := 1 / obs.Now().Sub(t0).Seconds(); rate > m.HierColdDesignsPerSec {
			m.HierColdDesignsPerSec = rate
		}
	}
	hierCache := fleet.NewCache()
	{
		lib, top := designs.DeepTree(hierLevels, hierVariants, 0)
		if _, err := fleet.VerifyHier(lib, lib.Cell(top), hierOpts(hierCache)); err != nil {
			return err
		}
	}
	hierEdits := 2 * *reps
	if hierEdits < 6 {
		hierEdits = 6
	}
	for i := 0; i < hierEdits; i++ {
		lib, top := designs.DeepTree(hierLevels, hierVariants, 0.1+0.01*float64(i))
		t0 := obs.Now()
		if _, err := fleet.VerifyHier(lib, lib.Cell(top), hierOpts(hierCache)); err != nil {
			return err
		}
		if rate := 1 / obs.Now().Sub(t0).Seconds(); rate > m.HierEditOneLeafReverifyPerSec {
			m.HierEditOneLeafReverifyPerSec = rate
		}
	}
	if m.HierColdDesignsPerSec > 0 {
		m.HierIncrementalSpeedup = m.HierEditOneLeafReverifyPerSec / m.HierColdDesignsPerSec
	}

	// Hot-kernel allocations per op, on the same workloads the
	// per-package alloc-regression tests pin.
	fpc := designs.SRAMArray(32, 16, 0)
	m.AllocsFingerprint = testing.AllocsPerRun(5, func() { fpc.Fingerprint() })
	rcc := designs.SRAMArray(32, 16, 0)
	m.AllocsRecognize = testing.AllocsPerRun(5, func() {
		if _, err := recognize.Analyze(rcc); err != nil {
			panic(err)
		}
	})
	trec, err := recognize.Analyze(designs.LatchPipeline(6, false))
	if err != nil {
		return err
	}
	topt := timing.Options{Proc: process.CMOS075(), Clock: timing.TwoPhase(3000)}
	m.AllocsTiming = testing.AllocsPerRun(5, func() {
		if _, err := timing.Analyze(trec, topt); err != nil {
			panic(err)
		}
	})
	ssim, err := switchsim.New(designs.DominoAdder(16))
	if err != nil {
		return err
	}
	ssim.Settle()
	si := 0
	m.AllocsSettle = testing.AllocsPerRun(10, func() {
		ssim.SetQuiet("phi", switchsim.Lo)
		ssim.Settle()
		ssim.SetQuiet("a0", switchsim.Bool(si%2 == 0))
		ssim.SetQuiet("b0", switchsim.Hi)
		ssim.SetQuiet("phi", switchsim.Hi)
		ssim.Settle()
		si++
	})

	// HTTP daemon throughput and latency under concurrent clients. Best
	// rate over -reps, like every other throughput here; the latency
	// quantiles follow the winning rep so the numbers describe one run.
	if *serveLoad {
		if *serveClients < 1 {
			*serveClients = 1
		}
		if *serveReqs < 1 {
			*serveReqs = 1
		}
		for r := 0; r < *reps; r++ {
			var sm BenchMetrics
			if err := benchServe(&sm, *serveClients, *serveReqs); err != nil {
				return err
			}
			if sm.ServeRequestsPerSec > m.ServeRequestsPerSec {
				m.ServeClients = sm.ServeClients
				m.ServeRequestsPerSec = sm.ServeRequestsPerSec
				m.ServeP50MS = sm.ServeP50MS
				m.ServeP99MS = sm.ServeP99MS
			}
		}
	}

	// Warm-cache hit rate: verify a large SRAM once, then re-verify.
	sram := []fleet.Item{{Name: "sram64x32", Circuit: designs.SRAMArray(64, 32, 0)}}
	warm := opts(1)
	fleet.Verify(sram, warm)
	second := fleet.Verify(sram, warm)
	if second.Hits+second.Misses > 0 {
		m.CacheHitPct = 100 * float64(second.Hits) / float64(second.Hits+second.Misses)
	}

	if *manifestPath != "" {
		// The manifest's corpus half comes from the cold -j 1 pass; the
		// headline metrics ride along as gauges so the trend tooling
		// can read everything from one artifact.
		col.SetGauge("bench.rtl_cycles_per_sec", m.RTLCyclesPerSec)
		col.SetGauge("bench.fleet_designs_per_sec_j1", m.FleetDesignsPerSecJ1)
		col.SetGauge("bench.fleet_designs_per_sec_jn", m.FleetDesignsPerSecJN)
		col.SetGauge("bench.cache_hit_pct", m.CacheHitPct)
		col.SetGauge("bench.disk_cold_designs_per_sec", m.DiskColdDesignsPerSec)
		col.SetGauge("bench.disk_warm_designs_per_sec", m.DiskWarmDesignsPerSec)
		col.SetGauge("bench.vectors_per_sec", m.VectorsPerSec)
		col.SetGauge("bench.lane_parallel_speedup", m.LaneParallelSpeedup)
		col.SetGauge("bench.cycles_per_day", m.CyclesPerDay)
		col.SetGauge("bench.lane_block_speedup", m.LaneBlockSpeedup)
		col.SetGauge("bench.hier_cold_designs_per_sec", m.HierColdDesignsPerSec)
		col.SetGauge("bench.hier_edit_one_leaf_reverify_per_sec", m.HierEditOneLeafReverifyPerSec)
		col.SetGauge("bench.hier_incremental_speedup", m.HierIncrementalSpeedup)
		if m.ServeRequestsPerSec > 0 {
			col.SetGauge("bench.serve_requests_per_sec", m.ServeRequestsPerSec)
			col.SetGauge("bench.serve_p50_ms", m.ServeP50MS)
			col.SetGauge("bench.serve_p99_ms", m.ServeP99MS)
		}
		mf := buildManifest("fcv bench", coldRep, col)
		mf.WallMS = float64(obs.Now().Sub(benchStart).Microseconds()) / 1000
		if err := mf.WriteFile(*manifestPath); err != nil {
			return err
		}
	}

	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *outPath == "-" {
		_, err = out.Write(b)
		return err
	}
	// Atomic write: CI uploads this file as an artifact, and an
	// interrupted run must never leave a truncated JSON for the
	// uploader (or the trend gate) to read.
	if err := obs.WriteFileAtomic(*outPath, b); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: rtl=%.0f cycles/sec, lanes=%.0f vectors/sec (%.1fx scalar), %.3g cycles/day at %d block workers (%.2fx serial), fleet j1=%.1f jN=%.1f designs/sec (%.2fx at %d workers), cache hit=%.0f%%, disk warm=%.2fx -> %s\n",
		m.RTLCyclesPerSec, m.VectorsPerSec, m.LaneParallelSpeedup, m.CyclesPerDay, m.LaneBlockWorkers, m.LaneBlockSpeedup, m.FleetDesignsPerSecJ1, m.FleetDesignsPerSecJN, m.FleetSpeedup, m.FleetWorkersJN, m.CacheHitPct, m.DiskWarmSpeedup, *outPath)
	fmt.Fprintf(out, "bench: hier cold=%.1f designs/sec, edit-one-leaf warm=%.1f designs/sec (%.1fx incremental)\n",
		m.HierColdDesignsPerSec, m.HierEditOneLeafReverifyPerSec, m.HierIncrementalSpeedup)
	if m.ServeRequestsPerSec > 0 {
		fmt.Fprintf(out, "bench: serve %d clients: %.1f req/sec, p50=%.1fms p99=%.1fms\n",
			m.ServeClients, m.ServeRequestsPerSec, m.ServeP50MS, m.ServeP99MS)
	}
	return nil
}
