package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/fleet"
	"repro/internal/process"
	"repro/internal/rtl"
)

// BenchMetrics is the JSON shape of `fcv bench -out BENCH_fleet.json`:
// the repo's headline performance numbers in machine-readable form, so
// CI can archive them per commit.
type BenchMetrics struct {
	// GOMAXPROCS records the parallelism the numbers were taken at —
	// the fleet speedup is bounded by it.
	GOMAXPROCS int `json:"gomaxprocs"`
	// RTLCyclesPerSec is the switch/RTL simulation throughput of the S1
	// pipeline workload (the paper's 200 cycles/sec yardstick).
	RTLCyclesPerSec float64 `json:"rtl_cycles_per_sec"`
	// FleetDesignsPerSecJ1 and JN are cold-cache corpus verification
	// rates at 1 worker and at GOMAXPROCS workers.
	FleetDesignsPerSecJ1 float64 `json:"fleet_designs_per_sec_j1"`
	FleetDesignsPerSecJN float64 `json:"fleet_designs_per_sec_jn"`
	// FleetSpeedup is JN/J1.
	FleetSpeedup float64 `json:"fleet_speedup"`
	// CacheHitPct is the cache hit percentage of a second pass over an
	// already-verified design (the memoization headline; 100 when every
	// lookup hits).
	CacheHitPct float64 `json:"cache_hit_pct"`
}

// benchZoo is the corpus the fleet numbers are measured over (the S5
// design zoo).
func benchZoo() []fleet.Item {
	return []fleet.Item{
		{Name: "invchain", Circuit: designs.InverterChain(12)},
		{Name: "adder16", Circuit: designs.DominoAdder(16)},
		{Name: "pipeline", Circuit: designs.LatchPipeline(6, false)},
		{Name: "sram16x8", Circuit: designs.SRAMArray(16, 8, 0.09)},
		{Name: "passmux8", Circuit: designs.PassMux(8)},
	}
}

// runBench measures the headline metrics in-process and writes them as
// JSON:
//
//	fcv bench [-out BENCH_fleet.json] [-cycles N]
func runBench(args []string, out *os.File) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	outPath := fs.String("out", "BENCH_fleet.json", "metrics JSON output path (\"-\" for stdout)")
	cycles := fs.Int("cycles", 20000, "RTL cycles to time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m := BenchMetrics{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// RTL simulation throughput (the S1 workload, shortened).
	prog, err := rtl.ParseString(designs.PipelineRTL())
	if err != nil {
		return err
	}
	sim, err := rtl.NewSim(prog)
	if err != nil {
		return err
	}
	img := make([]uint64, 64)
	for i := range img {
		img[i] = uint64(i*2557) & 0xffff
	}
	if err := sim.LoadMem("imem", img); err != nil {
		return err
	}
	if err := sim.Set("run", 1); err != nil {
		return err
	}
	sim.Run(*cycles / 10) // warm-up
	start := time.Now()
	sim.Run(*cycles)
	m.RTLCyclesPerSec = float64(*cycles) / time.Since(start).Seconds()

	// Cold-cache fleet rates at -j 1 and -j GOMAXPROCS.
	opts := func(j int) fleet.Options {
		return fleet.Options{
			Core:    core.Options{Proc: process.CMOS075()},
			Workers: j,
			Cache:   fleet.NewCache(),
		}
	}
	items := benchZoo()
	t1 := time.Now()
	fleet.Verify(items, opts(1))
	m.FleetDesignsPerSecJ1 = float64(len(items)) / time.Since(t1).Seconds()
	tn := time.Now()
	fleet.Verify(items, opts(m.GOMAXPROCS))
	m.FleetDesignsPerSecJN = float64(len(items)) / time.Since(tn).Seconds()
	if m.FleetDesignsPerSecJ1 > 0 {
		m.FleetSpeedup = m.FleetDesignsPerSecJN / m.FleetDesignsPerSecJ1
	}

	// Warm-cache hit rate: verify a large SRAM once, then re-verify.
	sram := []fleet.Item{{Name: "sram64x32", Circuit: designs.SRAMArray(64, 32, 0)}}
	warm := opts(1)
	fleet.Verify(sram, warm)
	second := fleet.Verify(sram, warm)
	if second.Hits+second.Misses > 0 {
		m.CacheHitPct = 100 * float64(second.Hits) / float64(second.Hits+second.Misses)
	}

	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *outPath == "-" {
		_, err = out.Write(b)
		return err
	}
	if err := os.WriteFile(*outPath, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: rtl=%.0f cycles/sec, fleet j1=%.1f jN=%.1f designs/sec (%.2fx), cache hit=%.0f%% -> %s\n",
		m.RTLCyclesPerSec, m.FleetDesignsPerSecJ1, m.FleetDesignsPerSecJN, m.FleetSpeedup, m.CacheHitPct, *outPath)
	return nil
}
