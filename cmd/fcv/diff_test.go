package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/process"
)

// multiCellDeck is a small corpus of structurally distinct cells —
// twin-free, so cache attribution (and therefore the event stream) is
// deterministic at any worker count.
const multiCellDeck = `
.subckt inv a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends
.subckt nand2 a b y
mna y a m vss nmos w=4 l=0.75
mnb m b vss vss nmos w=4 l=0.75
mpa y a vdd vdd pmos w=4 l=0.75
mpb y b vdd vdd pmos w=4 l=0.75
.ends
.subckt buf a y
mn1 m a vss vss nmos w=2 l=0.75
mp1 m a vdd vdd pmos w=4 l=0.75
mn2 y m vss vss nmos w=3 l=0.75
mp2 y m vdd vdd pmos w=6 l=0.75
.ends
`

// verifyToManifest runs the verify subcommand over args writing the
// manifest (and optionally the event stream) to the returned paths.
func verifyToManifest(t *testing.T, dir, tag string, jobs string, extra ...string) (string, string) {
	t.Helper()
	mpath := filepath.Join(dir, "m_"+tag+".json")
	epath := filepath.Join(dir, "e_"+tag+".jsonl")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	proc, err := process.ByName("cmos075")
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-manifest", mpath, "-events", epath, "-j", jobs, "-quiet"}, extra...)
	err = runVerify(args, proc, 1e6/proc.ClockFreqMHz, devnull)
	if err != nil && !errors.Is(err, errVerifyFindings) {
		t.Fatalf("runVerify(%s): %v", tag, err)
	}
	return mpath, epath
}

// TestDiffIdenticalRuns is the acceptance check: diffing manifests of
// the same corpus produced at different worker counts reports nothing
// and exits clean.
func TestDiffIdenticalRuns(t *testing.T) {
	dir := t.TempDir()
	deck := writeDeck(t, multiCellDeck)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	base, _ := verifyToManifest(t, dir, "j1", "1", "-cells", deck)
	for _, j := range []string{"1", "4", "16"} {
		cur, _ := verifyToManifest(t, dir, "j"+j+"b", j, "-cells", deck)
		if err := runDiff([]string{base, cur}, devnull); err != nil {
			t.Errorf("diff of identical corpus at j=%s: %v", j, err)
		}
	}
}

// TestDiffSeededDefect seeds a defective deck into the corpus and
// checks that diff flags exactly its findings as new, by stable ID,
// with the findings exit code.
func TestDiffSeededDefect(t *testing.T) {
	dir := t.TempDir()
	clean := writeDeck(t, multiCellDeck)

	base, _ := verifyToManifest(t, dir, "base", "2", "-lint", "-cells", clean)
	cur, _ := verifyToManifest(t, dir, "cur", "2", "-lint", "-cells", clean, brokenDeck)

	outFile, err := os.CreateTemp(dir, "diffout")
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	err = runDiff([]string{base, cur}, outFile)
	if !errors.Is(err, errDiffNewFindings) {
		t.Fatalf("diff with seeded defect = %v, want errDiffNewFindings", err)
	}
	if !isFindings(err) {
		t.Error("new findings not in the exit-1 family")
	}
	text, err := os.ReadFile(outFile.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(text)
	if !strings.Contains(out, "NEW") {
		t.Errorf("diff output lists no NEW findings:\n%s", out)
	}
	if strings.Contains(out, "FIXED") {
		t.Errorf("clean cells reported as fixed:\n%s", out)
	}

	// Every NEW line must carry a stable ID from the current manifest.
	m, err := obs.ReadManifestFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, it := range m.Items {
		for _, f := range it.Findings {
			ids[f.ID] = true
		}
	}
	var newLines int
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "NEW") {
			continue
		}
		newLines++
		var found bool
		for id := range ids {
			if strings.Contains(line, id) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("NEW line carries no manifest finding ID: %s", line)
		}
	}
	if newLines == 0 {
		t.Error("no NEW lines rendered")
	}

	// The reverse diff sees the same findings as fixed, and passes.
	revOut, err := os.CreateTemp(dir, "revout")
	if err != nil {
		t.Fatal(err)
	}
	defer revOut.Close()
	if err := runDiff([]string{cur, base}, revOut); err != nil {
		t.Errorf("reverse diff (defect removed) = %v, want nil", err)
	}
	rev, _ := os.ReadFile(revOut.Name())
	if !strings.Contains(string(rev), "FIXED") {
		t.Errorf("reverse diff lists no FIXED findings:\n%s", rev)
	}
}

// TestDiffPhaseFixturesAcrossWorkers locks the new FCV011–FCV018
// fixtures into the determinism spine: verify -lint over the seeded and
// clean phase decks produces manifests that diff clean across j=1/4/16,
// and the seeded findings carry stable IDs that survive the worker
// sweep (same ID set at every j).
func TestDiffPhaseFixturesAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	decks := []string{
		"../../examples/decks/c2mos_pipe.sp",
		"../../examples/decks/c2mos_pipe_clean.sp",
		"../../examples/decks/nora_stage.sp",
		"../../examples/decks/nora_stage_clean.sp",
		"../../examples/decks/sneak_path.sp",
		"../../examples/decks/sneak_path_clean.sp",
	}
	args := append([]string{"-lint", "-cells"}, decks...)
	base, _ := verifyToManifest(t, dir, "pj1", "1", args...)

	m, err := obs.ReadManifestFile(base)
	if err != nil {
		t.Fatal(err)
	}
	baseIDs := map[string]bool{}
	for _, it := range m.Items {
		for _, f := range it.Findings {
			baseIDs[f.ID] = true
		}
	}
	if len(baseIDs) == 0 {
		t.Fatal("seeded fixtures produced no findings in the manifest")
	}

	for _, j := range []string{"4", "16"} {
		cur, _ := verifyToManifest(t, dir, "pj"+j, j, args...)
		if err := runDiff([]string{base, cur}, devnull); err != nil {
			t.Errorf("diff of phase fixtures j=1 vs j=%s: %v", j, err)
		}
		mc, err := obs.ReadManifestFile(cur)
		if err != nil {
			t.Fatal(err)
		}
		curIDs := map[string]bool{}
		for _, it := range mc.Items {
			for _, f := range it.Findings {
				curIDs[f.ID] = true
				if !baseIDs[f.ID] {
					t.Errorf("j=%s introduced finding ID %s missing at j=1", j, f.ID)
				}
			}
		}
		if len(curIDs) != len(baseIDs) {
			t.Errorf("j=%s finding IDs = %d, want %d", j, len(curIDs), len(baseIDs))
		}
	}
}

// TestDiffRenameInvariance renames the deck file (which renames every
// item, since -cells items are named deck:cell) and checks the diff is
// still empty: matching is by structural fingerprint, not item name.
func TestDiffRenameInvariance(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	a := filepath.Join(dir, "alpha.sp")
	if err := os.WriteFile(a, []byte(multiCellDeck), 0o644); err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "beta.sp")
	if err := os.WriteFile(b, []byte(multiCellDeck), 0o644); err != nil {
		t.Fatal(err)
	}
	m1, _ := verifyToManifest(t, dir, "alpha", "2", "-cells", a)
	m2, _ := verifyToManifest(t, dir, "beta", "2", "-cells", b)
	if err := runDiff([]string{m1, m2}, devnull); err != nil {
		t.Errorf("diff across renamed decks: %v", err)
	}
}

// TestDiffUnreadable checks the operational-failure contract.
func TestDiffUnreadable(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	err = runDiff([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, devnull)
	if err == nil || isFindings(err) {
		t.Errorf("unreadable manifests = %v, want operational failure", err)
	}
}

// maskEventTimes zeroes the t_ms stamp on every event line, the one
// documented-volatile field, and returns the re-marshalled stream.
func maskEventTimes(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out strings.Builder
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		ev.TMS = 0
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestEventStreamDeterministic is the tentpole acceptance: the JSONL
// event stream is byte-identical across runs and worker counts once
// the wall-clock stamps are masked.
func TestEventStreamDeterministic(t *testing.T) {
	dir := t.TempDir()
	deck := writeDeck(t, multiCellDeck)

	_, e1 := verifyToManifest(t, dir, "ev1", "1", "-cells", deck)
	ref := maskEventTimes(t, e1)
	if ref == "" {
		t.Fatal("empty event stream")
	}
	for _, want := range []string{`"run-start"`, `"run-end"`, `"item-start"`, `"stage-start"`, `"stage-end"`, `"item-end"`} {
		if !strings.Contains(ref, want) {
			t.Errorf("event stream missing %s events", want)
		}
	}
	for i, j := range []string{"1", "4", "16"} {
		_, e := verifyToManifest(t, dir, "ev_rep"+j, j, "-cells", deck)
		if got := maskEventTimes(t, e); got != ref {
			t.Errorf("event stream differs at j=%s (run %d):\n--- j=1 ---\n%s\n--- j=%s ---\n%s", j, i, ref, j, got)
		}
	}
}

// TestEventStreamFindings checks finding events carry the same stable
// IDs the manifest records.
func TestEventStreamFindings(t *testing.T) {
	dir := t.TempDir()
	mpath, epath := verifyToManifest(t, dir, "find", "2", "-lint", "-cells", brokenDeck)
	m, err := obs.ReadManifestFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, it := range m.Items {
		for _, f := range it.Findings {
			want[f.ID] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("broken deck produced no findings in the manifest")
	}
	stream := maskEventTimes(t, epath)
	got := map[string]bool{}
	for _, line := range strings.Split(stream, "\n") {
		if line == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "finding" {
			got[ev.ID] = true
		}
	}
	for id := range want {
		if !got[id] {
			t.Errorf("manifest finding %s never streamed as an event", id)
		}
	}
	for id := range got {
		if !want[id] {
			t.Errorf("streamed finding %s absent from the manifest", id)
		}
	}
}

// TestTrendMetricKeyDrift is the satellite contract: a baseline whose
// metric set drifted (keys missing entirely) is skipped with a warning
// rather than misread as zero and failed.
func TestTrendMetricKeyDrift(t *testing.T) {
	dir := t.TempDir()
	// Baseline from a hypothetical older fcv: one watched key missing,
	// one unknown extra key.
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, []byte(`{"rtl_cycles_per_sec": 1000, "legacy_metric": 42}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cur := writeMetrics(t, dir, "cur.json", BenchMetrics{
		RTLCyclesPerSec: 900, FleetDesignsPerSecJ1: 100, FleetDesignsPerSecJN: 400,
	})
	outFile, err := os.CreateTemp(dir, "trendout")
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	if err := runTrend([]string{"-baseline", old, cur}, outFile); err != nil {
		t.Errorf("drifted baseline failed the gate: %v", err)
	}
	text, _ := os.ReadFile(outFile.Name())
	if !strings.Contains(string(text), "metric-key drift") {
		t.Errorf("no drift warning printed:\n%s", text)
	}
	// The still-shared key is compared: a past-tolerance drop on it fails.
	bad := writeMetrics(t, dir, "bad.json", BenchMetrics{RTLCyclesPerSec: 100})
	err = runTrend([]string{"-baseline", old, bad}, outFile)
	if !errors.Is(err, errTrendRegression) {
		t.Errorf("regression on shared key = %v, want errTrendRegression", err)
	}
}

// TestTrendWatchesLaneMetrics pins the bit-parallel throughput keys
// into the watched set — losing them from trendMetrics would silently
// stop gating the packed kernels — and checks a regression on one of
// them actually fails.
func TestTrendWatchesLaneMetrics(t *testing.T) {
	watched := map[string]bool{}
	for _, k := range trendMetrics {
		watched[k] = true
	}
	for _, k := range []string{"vectors_per_sec", "cycles_per_day", "lane_parallel_speedup"} {
		if !watched[k] {
			t.Errorf("trendMetrics does not watch %q", k)
		}
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{"vectors_per_sec": 1000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, "cur.json")
	if err := os.WriteFile(cur, []byte(`{"vectors_per_sec": 100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile, err := os.CreateTemp(dir, "trendout")
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	if err := runTrend([]string{"-baseline", base, cur}, outFile); !errors.Is(err, errTrendRegression) {
		t.Errorf("lane-metric regression = %v, want errTrendRegression", err)
	}
}

// TestTrendWatchesServeMetrics pins the serve load-test keys into the
// gate: throughput in the higher-is-better set, latency quantiles in
// the lower-is-better set where a RISE past tolerance fails. Latencies
// judged with the throughput inequality would wave every slowdown
// through, so the direction is asserted both ways.
func TestTrendWatchesServeMetrics(t *testing.T) {
	watched := map[string]bool{}
	for _, k := range trendMetrics {
		watched[k] = true
	}
	if !watched["serve_requests_per_sec"] {
		t.Error("trendMetrics does not watch serve_requests_per_sec")
	}
	lower := map[string]bool{}
	for _, k := range trendLowerBetter {
		lower[k] = true
	}
	for _, k := range []string{"serve_p50_ms", "serve_p99_ms"} {
		if !lower[k] {
			t.Errorf("trendLowerBetter does not watch %q", k)
		}
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{"serve_p99_ms": 100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile, err := os.CreateTemp(dir, "trendout")
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	slow := filepath.Join(dir, "slow.json")
	if err := os.WriteFile(slow, []byte(`{"serve_p99_ms": 200}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTrend([]string{"-baseline", base, slow}, outFile); !errors.Is(err, errTrendRegression) {
		t.Errorf("p99 doubling = %v, want errTrendRegression", err)
	}
	fast := filepath.Join(dir, "fast.json")
	if err := os.WriteFile(fast, []byte(`{"serve_p99_ms": 10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTrend([]string{"-baseline", base, fast}, outFile); err != nil {
		t.Errorf("p99 improvement failed the gate: %v", err)
	}
}
