package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// diffKey identifies one finding occurrence across runs. The circuit's
// structural fingerprint (not the item's display name) anchors the item
// half and the stable finding ID the finding half, so a renamed deck or
// cell diffs as the same finding while a sizing change — which moves
// both hashes — diffs as fixed+new.
type diffKey struct {
	fingerprint string
	id          string
}

// findingRef is one finding with its owning item, for display.
type findingRef struct {
	item string
	f    obs.Finding
}

// manifestDiff is the computed comparison of two run manifests.
type manifestDiff struct {
	// New/Fixed are findings present only in the current/baseline run.
	New, Fixed []findingRef
	// Changed are findings present in both whose severity, margin or
	// detail moved.
	Changed []findingChange
	// Counters are the deterministic-counter deltas (changed keys only).
	Counters []counterDelta
	// Stages are per-stage duration deltas, aggregated by stage name.
	Stages []stageDelta
}

// findingChange pairs the two versions of one persistent finding.
type findingChange struct {
	item   string
	before obs.Finding
	after  obs.Finding
}

// counterDelta is one counter's movement between runs.
type counterDelta struct {
	name              string
	baseline, current int64
}

// stageDelta aggregates one stage's duration across all items.
type stageDelta struct {
	name              string
	baseline, current float64
}

// diffManifests computes the finding, counter and stage-duration deltas
// between two parsed manifests. Finding matching is by (structural
// fingerprint, stable finding ID); repeated occurrences (structural
// twins in the corpus) match by count.
func diffManifests(base, cur *obs.Manifest) *manifestDiff {
	d := &manifestDiff{}
	baseIdx := indexFindings(base)
	curIdx := indexFindings(cur)
	// New and changed: walk current in manifest order.
	for _, it := range cur.Items {
		for _, f := range it.Findings {
			key := diffKey{it.Fingerprint, f.ID}
			old, ok := takeOne(baseIdx, key)
			if !ok {
				d.New = append(d.New, findingRef{item: it.Name, f: f})
				continue
			}
			if old.Severity != f.Severity || old.Margin != f.Margin || old.Detail != f.Detail {
				d.Changed = append(d.Changed, findingChange{item: it.Name, before: old, after: f})
			}
		}
	}
	// Fixed: whatever the walk above did not consume from the baseline.
	for _, it := range base.Items {
		for _, f := range it.Findings {
			key := diffKey{it.Fingerprint, f.ID}
			if n := curIdx.count[key]; n > 0 {
				curIdx.count[key] = n - 1
				continue
			}
			d.Fixed = append(d.Fixed, findingRef{item: it.Name, f: f})
		}
	}
	d.Counters = diffCounters(base.Counters, cur.Counters)
	d.Stages = diffStages(base, cur)
	return d
}

// findingIndex counts finding occurrences per key and keeps one
// representative per key for change comparison.
type findingIndex struct {
	count map[diffKey]int
	rep   map[diffKey]obs.Finding
}

func indexFindings(m *obs.Manifest) *findingIndex {
	idx := &findingIndex{count: map[diffKey]int{}, rep: map[diffKey]obs.Finding{}}
	for _, it := range m.Items {
		for _, f := range it.Findings {
			key := diffKey{it.Fingerprint, f.ID}
			idx.count[key]++
			if _, ok := idx.rep[key]; !ok {
				idx.rep[key] = f
			}
		}
	}
	return idx
}

// takeOne consumes one occurrence of key from the index, returning its
// representative finding.
func takeOne(idx *findingIndex, key diffKey) (obs.Finding, bool) {
	if idx.count[key] == 0 {
		return obs.Finding{}, false
	}
	idx.count[key]--
	return idx.rep[key], true
}

// diffCounters returns deltas for every counter whose value moved (or
// that exists on only one side), sorted by name.
func diffCounters(base, cur map[string]int64) []counterDelta {
	names := map[string]bool{}
	for k := range base {
		names[k] = true
	}
	for k := range cur {
		names[k] = true
	}
	var out []counterDelta
	for k := range names {
		if base[k] != cur[k] {
			out = append(out, counterDelta{name: k, baseline: base[k], current: cur[k]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// diffStages aggregates span durations by stage name — the last path
// segment for sub-spans (recognize/lint/checks/timing across all
// items), the full path for roots — and returns the per-stage totals
// side by side, sorted by name.
func diffStages(base, cur *obs.Manifest) []stageDelta {
	agg := func(m *obs.Manifest) map[string]float64 {
		out := map[string]float64{}
		for _, s := range m.Stages {
			name := s.Path
			if s.Depth > 0 {
				name = name[strings.LastIndexByte(name, '/')+1:]
			}
			// Depth-1 spans are per-item; aggregating them by item name
			// would make the diff grow with the corpus, so fold them into
			// one "items" row and keep stage-level resolution at depth ≥ 2.
			if s.Depth == 1 {
				name = "(items)"
			}
			out[name] += s.DurMS
		}
		return out
	}
	b, c := agg(base), agg(cur)
	names := map[string]bool{}
	for k := range b {
		names[k] = true
	}
	for k := range c {
		names[k] = true
	}
	var out []stageDelta
	for k := range names {
		out = append(out, stageDelta{name: k, baseline: b[k], current: c[k]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// render writes the human-readable diff.
func (d *manifestDiff) render(w io.Writer) {
	fmt.Fprintf(w, "manifest diff: %d new, %d fixed, %d changed finding(s)\n",
		len(d.New), len(d.Fixed), len(d.Changed))
	for _, r := range d.New {
		fmt.Fprintf(w, "  NEW    %-9s %s  [%s] %s: %s\n", r.f.Severity, r.f.ID, r.item, r.f.Subject, r.f.Detail)
	}
	for _, r := range d.Fixed {
		fmt.Fprintf(w, "  FIXED  %-9s %s  [%s] %s: %s\n", r.f.Severity, r.f.ID, r.item, r.f.Subject, r.f.Detail)
	}
	for _, ch := range d.Changed {
		fmt.Fprintf(w, "  CHANGED %s  [%s] %s: %s (%s, margin %+.3f) -> %s (%s, margin %+.3f)\n",
			ch.after.ID, ch.item, ch.after.Subject,
			ch.before.Severity, ch.before.Detail, ch.before.Margin,
			ch.after.Severity, ch.after.Detail, ch.after.Margin)
	}
	if len(d.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, c := range d.Counters {
			fmt.Fprintf(w, "  %-42s %10d -> %10d  (%+d)\n", c.name, c.baseline, c.current, c.current-c.baseline)
		}
	}
	if len(d.Stages) > 0 {
		fmt.Fprintln(w, "stage durations (aggregated, wall-clock — informational):")
		for _, s := range d.Stages {
			delta := "  n/a"
			if s.baseline > 0 {
				delta = fmt.Sprintf("%+5.1f%%", (s.current-s.baseline)/s.baseline*100)
			}
			fmt.Fprintf(w, "  %-24s %10.2fms -> %10.2fms  %s\n", s.name, s.baseline, s.current, delta)
		}
	}
}

// runDiff is the diff subcommand: the run-to-run regression gate.
//
//	fcv diff <baseline.json> <current.json>
//
// Both arguments are run manifests (v2, or legacy v1 — v1 manifests
// carry no findings, so only counters and stages diff). Exit codes:
// 0 no new findings, 1 new findings appeared, 2 operational failure
// (unreadable or invalid manifest). Fixed and changed findings are
// reported but never fail the gate; neither do counter or duration
// movements.
func runDiff(args []string, out *os.File) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("diff needs exactly two manifest files: <baseline.json> <current.json>")
	}
	base, err := obs.ReadManifestFile(rest[0])
	if err != nil {
		return err
	}
	cur, err := obs.ReadManifestFile(rest[1])
	if err != nil {
		return err
	}
	if base.ConfigKey != cur.ConfigKey {
		fmt.Fprintf(out, "diff: WARNING: config keys differ — runs are not directly comparable\n")
	}
	d := diffManifests(base, cur)
	d.render(out)
	if len(d.New) > 0 {
		return fmt.Errorf("%w: %d finding(s) not present in baseline", errDiffNewFindings, len(d.New))
	}
	return nil
}
