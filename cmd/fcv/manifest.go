package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// buildManifest assembles the run manifest from a fleet report and its
// telemetry collector; the heavy lifting lives in fleet.BuildManifest
// so the serve daemon emits the same document shape.
func buildManifest(tool string, rep *fleet.Report, col *obs.Collector) *obs.Manifest {
	return fleet.BuildManifest(tool, rep, col)
}

// runManifestCheck is the manifest-check subcommand: validate a run
// manifest against the fcv-run-manifest/v2 schema (legacy v1 documents
// validate through the frozen compat reader).
//
//	fcv manifest-check <manifest.json>
//	fcv manifest-check -print-schema
//
// Exit codes: 0 valid, 1 schema violation, 2 operational failure
// (unreadable file). -print-schema writes the JSON Schema document to
// stdout and exits 0 — the same bytes pinned by the golden-file test.
func runManifestCheck(args []string, out *os.File) error {
	fs := flag.NewFlagSet("manifest-check", flag.ContinueOnError)
	printSchema := fs.Bool("print-schema", false, "print the manifest JSON Schema and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *printSchema {
		_, err := out.Write(obs.SchemaJSON())
		return err
	}
	rest := fs.Args()
	if len(rest) < 1 {
		return fmt.Errorf("manifest-check needs a manifest JSON file (or -print-schema)")
	}
	var failed int
	for _, path := range rest {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		m, err := obs.ParseManifest(data)
		if err != nil {
			fmt.Fprintf(out, "manifest-check: %s: INVALID: %v\n", path, err)
			failed++
			continue
		}
		fmt.Fprintf(out, "manifest-check: %s: ok (schema %s)\n", path, m.Schema)
	}
	if failed > 0 {
		return fmt.Errorf("%w: %d of %d file(s) failed validation", errManifestInvalid, failed, len(rest))
	}
	return nil
}
