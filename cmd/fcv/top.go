package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// runTop is the `fcv top` subcommand: a polling terminal dashboard over
// a running daemon's /stats and /metrics endpoints.
//
//	fcv top [-addr http://127.0.0.1:8117] [-interval 2s] [-once]
//
// Each frame shows live request throughput (req/s over the last poll
// window), latency quantiles, pool and queue occupancy, the verdict
// tally, cache hit ratios, and process basics. -once renders a single
// frame without clearing the screen and exits — the scripting/CI mode.
func runTop(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8117", "daemon base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if *interval <= 0 {
		return fmt.Errorf("top: -interval must be positive")
	}

	var prev *serve.Stats
	var prevT time.Time
	frame := func() error {
		st, err := fetchStats(base)
		if err != nil {
			return fmt.Errorf("top: %s: %w", base, err)
		}
		gauges, err := fetchMetricGauges(base)
		if err != nil {
			return fmt.Errorf("top: %s: %w", base, err)
		}
		now := obs.Now()
		// Throughput: served delta over the poll window; the first frame
		// (and -once) falls back to the lifetime average.
		reqPerSec := 0.0
		if prev != nil && now.After(prevT) {
			reqPerSec = float64(st.Served-prev.Served) / now.Sub(prevT).Seconds()
		} else if st.UptimeMS > 0 {
			reqPerSec = float64(st.Served) / (st.UptimeMS / 1000)
		}
		prev, prevT = st, now
		renderTopFrame(out, base, st, gauges, reqPerSec)
		return nil
	}

	if *once {
		return frame()
	}
	// Live mode: clear the screen before each frame, poll forever (^C
	// exits). Errors end the loop — a daemon that went away should not
	// leave a silently frozen dashboard.
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		fmt.Fprint(out, "\x1b[H\x1b[2J")
		if err := frame(); err != nil {
			return err
		}
		<-ticker.C
	}
}

// renderTopFrame prints one dashboard frame.
func renderTopFrame(out io.Writer, base string, st *serve.Stats, gauges map[string]float64, reqPerSec float64) {
	drain := "no"
	if st.Draining {
		drain = "YES"
	}
	hitPct := func(hits, misses int64) string {
		if hits+misses == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
	}
	pHit := st.Counters["serve.parse_cache.hit"]
	pMiss := st.Counters["serve.parse_cache.miss"]
	fmt.Fprintf(out, "fcv top — %s   up %s   draining %s\n",
		base, (time.Duration(st.UptimeMS * float64(time.Millisecond))).Round(100*time.Millisecond), drain)
	fmt.Fprintf(out, "  requests   %d served  %d rejected  %d bad      req/s %.2f\n",
		st.Served, st.Rejected, st.BadRequests, reqPerSec)
	fmt.Fprintf(out, "  latency    p50 %.2fms   p99 %.2fms\n", st.RequestP50MS, st.RequestP99MS)
	fmt.Fprintf(out, "  pool       %d/%d free   queue %d/%d\n",
		st.PoolAvailable, st.PoolWorkers, st.QueueDepth, st.QueueLimit)
	fmt.Fprintf(out, "  verdicts   pass %d  inspect %d  violation %d  error %d\n",
		st.Verdicts.Pass, st.Verdicts.Inspect, st.Verdicts.Violation, st.Verdicts.Error)
	fmt.Fprintf(out, "  cache      hits %d  misses %d  (%s hit)   entries %d\n",
		st.Cache.Hits, st.Cache.Misses, hitPct(st.Cache.Hits, st.Cache.Misses), st.Cache.Entries)
	fmt.Fprintf(out, "  parse      hits %d  misses %d  (%s hit)\n", pHit, pMiss, hitPct(pHit, pMiss))
	sHit := st.Counters["fleet.subcell.hit"]
	sMiss := st.Counters["fleet.subcell.miss"]
	fmt.Fprintf(out, "  subcell    hits %d  misses %d  (%s hit)   composed %d\n",
		sHit, sMiss, hitPct(sHit, sMiss), st.Counters["fleet.subcell.compose"])
	if st.Disk != nil {
		fmt.Fprintf(out, "  disk       entries %d\n", st.Disk.Entries)
	}
	fmt.Fprintf(out, "  process    goroutines %.0f   heap %.1f MiB   slow traces %.0f\n",
		gauges["fcv_process_goroutines"],
		gauges["fcv_process_heap_alloc_bytes"]/(1<<20),
		gauges["fcv_serve_slow_traces_retained"])
}

// fetchStats GETs and decodes the daemon's /stats document.
func fetchStats(base string) (*serve.Stats, error) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats: status %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("/stats: %w", err)
	}
	return &st, nil
}

// fetchMetricGauges GETs /metrics and extracts the unlabeled samples
// the dashboard wants (a tolerant line scan — fcv top must keep working
// against a daemon a version ahead or behind).
func fetchMetricGauges(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue
		}
		if v, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err == nil {
			out[name] = v
		}
	}
	return out, nil
}
