package main

import (
	"flag"
	"fmt"
	"html"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// cellSpans is the extracted stage waterfall of one corpus item: the
// item's own span plus its stage sub-spans, in trace order.
type cellSpans struct {
	name    string
	totalMS float64
	stages  []obs.SpanInfo
}

// extractWaterfall folds the flattened span tree back into per-cell
// stage groups: depth-1 spans under the "fleet" root are items, deeper
// spans belong to the most recent item.
func extractWaterfall(m *obs.Manifest) []cellSpans {
	var out []cellSpans
	for _, s := range m.Stages {
		switch {
		case s.Depth == 1:
			name := s.Path[strings.LastIndexByte(s.Path, '/')+1:]
			out = append(out, cellSpans{name: name, totalMS: s.DurMS})
		case s.Depth >= 2 && len(out) > 0:
			out[len(out)-1].stages = append(out[len(out)-1].stages, s)
		}
	}
	return out
}

// cacheHitRatio returns hits/(hits+misses) from the run counters, and
// whether a cache was in play at all.
func cacheHitRatio(m *obs.Manifest) (float64, bool) {
	hits := m.Counters["fleet.cache.hits"]
	misses := m.Counters["fleet.cache.misses"]
	if hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}

// diskHitRatio is cacheHitRatio for the persistent layer: disk hits
// over disk lookups, present only when verify ran with a -cache-dir.
func diskHitRatio(m *obs.Manifest) (float64, bool) {
	hits := m.Counters["fleet.diskcache.hit"]
	misses := m.Counters["fleet.diskcache.miss"]
	if hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}

// slowestItems returns up to n items by descending elapsed time.
func slowestItems(m *obs.Manifest, n int) []obs.ManifestItem {
	items := append([]obs.ManifestItem(nil), m.Items...)
	sort.SliceStable(items, func(i, j int) bool { return items[i].ElapsedMS > items[j].ElapsedMS })
	if len(items) > n {
		items = items[:n]
	}
	return items
}

// findingsByCheck groups every item's findings under "source/check",
// keys sorted, findings in manifest order with their item attached.
func findingsByCheck(m *obs.Manifest) ([]string, map[string][]findingRef) {
	groups := map[string][]findingRef{}
	for _, it := range m.Items {
		for _, f := range it.Findings {
			key := f.Source + "/" + f.Check
			groups[key] = append(groups[key], findingRef{item: it.Name, f: f})
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, groups
}

// bar renders a proportional text bar of up to width characters.
func bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n < 1 && v > 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// evidenceLine renders a finding's evidence block on one line.
func evidenceLine(f obs.Finding) string {
	var parts []string
	if len(f.Evidence.Devices) > 0 {
		parts = append(parts, "devices "+strings.Join(f.Evidence.Devices, ","))
	}
	if len(f.Evidence.Nets) > 0 {
		parts = append(parts, "nets "+strings.Join(f.Evidence.Nets, ","))
	}
	if f.Evidence.Context != "" {
		parts = append(parts, f.Evidence.Context)
	}
	if f.Evidence.Unit != "" {
		parts = append(parts, fmt.Sprintf("measured %.3g vs %.3g %s",
			f.Evidence.Measured, f.Evidence.Threshold, f.Evidence.Unit))
	}
	return strings.Join(parts, "; ")
}

// renderTextReport writes the run report as plain text.
func renderTextReport(m *obs.Manifest, topN int, w io.Writer) {
	fmt.Fprintf(w, "run report: %s  (schema %s)\n", m.Tool, m.Schema)
	fmt.Fprintf(w, "  workers=%d  wall=%.2fms  items=%d\n", m.Workers, m.WallMS, len(m.Items))
	fmt.Fprintf(w, "  verdicts: pass=%d inspect=%d violation=%d error=%d\n",
		m.Verdicts.Pass, m.Verdicts.Inspect, m.Verdicts.Violation, m.Verdicts.Error)
	if ratio, ok := cacheHitRatio(m); ok {
		fmt.Fprintf(w, "  cache: %.0f%% hit ratio (%d hits, %d misses)\n",
			ratio*100, m.Counters["fleet.cache.hits"], m.Counters["fleet.cache.misses"])
	}
	if ratio, ok := diskHitRatio(m); ok {
		fmt.Fprintf(w, "  disk cache: %.0f%% hit ratio (%d hits, %d misses, %d corrupt)\n",
			ratio*100, m.Counters["fleet.diskcache.hit"], m.Counters["fleet.diskcache.miss"],
			m.Counters["fleet.diskcache.corrupt"])
	}

	slow := slowestItems(m, topN)
	if len(slow) > 0 {
		fmt.Fprintf(w, "\nslowest %d item(s):\n", len(slow))
		max := slow[0].ElapsedMS
		for _, it := range slow {
			fmt.Fprintf(w, "  %-32s %10.2fms  %s\n", it.Name, it.ElapsedMS, bar(it.ElapsedMS, max, 30))
		}
	}

	cells := extractWaterfall(m)
	if len(cells) > 0 {
		fmt.Fprintln(w, "\nper-cell stage waterfall:")
		var max float64
		for _, c := range cells {
			if c.totalMS > max {
				max = c.totalMS
			}
		}
		for _, c := range cells {
			fmt.Fprintf(w, "  %-32s %10.2fms %s\n", c.name, c.totalMS, bar(c.totalMS, max, 30))
			for _, s := range c.stages {
				stage := s.Path[strings.LastIndexByte(s.Path, '/')+1:]
				fmt.Fprintf(w, "    %-30s %10.2fms %s\n", stage, s.DurMS, bar(s.DurMS, max, 30))
			}
		}
	}

	if len(m.Histograms) > 0 {
		fmt.Fprintln(w, "\nduration distributions (p50 / p90 / p99, ms):")
		names := make([]string, 0, len(m.Histograms))
		for k := range m.Histograms {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, name := range names {
			h := m.Histograms[name]
			fmt.Fprintf(w, "  %-32s n=%-5d %8.2f / %8.2f / %8.2f\n",
				name, h.Count, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
		}
	}

	keys, groups := findingsByCheck(m)
	if len(keys) == 0 {
		fmt.Fprintln(w, "\nno findings — corpus clean")
		return
	}
	fmt.Fprintln(w, "\nfindings by check:")
	for _, k := range keys {
		fmt.Fprintf(w, "  %s (%d):\n", k, len(groups[k]))
		for _, r := range groups[k] {
			fmt.Fprintf(w, "    %-9s %s  [%s] %s: %s\n", r.f.Severity, r.f.ID, r.item, r.f.Subject, r.f.Detail)
			if ev := evidenceLine(r.f); ev != "" {
				fmt.Fprintf(w, "              %s\n", ev)
			}
		}
	}
}

// renderHTMLReport writes the run report as one self-contained static
// HTML page (inline CSS, no external assets, no scripts).
func renderHTMLReport(m *obs.Manifest, topN int, w io.Writer) {
	esc := html.EscapeString
	fmt.Fprint(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>fcv run report</title><style>
body{font-family:ui-monospace,Menlo,monospace;margin:2em;color:#222}
h1{font-size:1.3em}h2{font-size:1.05em;margin-top:1.6em;border-bottom:1px solid #ccc}
table{border-collapse:collapse}td,th{padding:2px 10px;text-align:left;font-size:.9em}
th{border-bottom:1px solid #888}
.bar{display:inline-block;height:.75em;background:#4a90d9}
.stage .bar{background:#9cc3e6}
.sev-violation{color:#b00}.sev-error{color:#b00;font-weight:bold}
.sev-inspect{color:#b60}.sev-warn{color:#b60}
.id{color:#666;font-size:.85em}
.ev{color:#555;font-size:.85em}
</style></head><body>
`)
	fmt.Fprintf(w, "<h1>%s</h1>\n", esc(m.Tool))
	fmt.Fprintf(w, "<p>schema %s · workers %d · wall %.2f ms · %d items</p>\n",
		esc(m.Schema), m.Workers, m.WallMS, len(m.Items))
	fmt.Fprintf(w, "<p>verdicts: pass=%d inspect=%d violation=%d error=%d",
		m.Verdicts.Pass, m.Verdicts.Inspect, m.Verdicts.Violation, m.Verdicts.Error)
	if ratio, ok := cacheHitRatio(m); ok {
		fmt.Fprintf(w, " · cache hit ratio %.0f%%", ratio*100)
	}
	if ratio, ok := diskHitRatio(m); ok {
		fmt.Fprintf(w, " · disk hit ratio %.0f%%", ratio*100)
	}
	fmt.Fprint(w, "</p>\n")

	slow := slowestItems(m, topN)
	if len(slow) > 0 {
		fmt.Fprintf(w, "<h2>slowest %d item(s)</h2>\n<table><tr><th>item</th><th>elapsed</th><th></th></tr>\n", len(slow))
		max := slow[0].ElapsedMS
		for _, it := range slow {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%.2f ms</td><td><span class=\"bar\" style=\"width:%.0fpx\"></span></td></tr>\n",
				esc(it.Name), it.ElapsedMS, barPx(it.ElapsedMS, max))
		}
		fmt.Fprint(w, "</table>\n")
	}

	cells := extractWaterfall(m)
	if len(cells) > 0 {
		fmt.Fprint(w, "<h2>per-cell stage waterfall</h2>\n<table><tr><th>cell / stage</th><th>duration</th><th></th></tr>\n")
		var max float64
		for _, c := range cells {
			if c.totalMS > max {
				max = c.totalMS
			}
		}
		for _, c := range cells {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%.2f ms</td><td><span class=\"bar\" style=\"width:%.0fpx\"></span></td></tr>\n",
				esc(c.name), c.totalMS, barPx(c.totalMS, max))
			for _, s := range c.stages {
				stage := s.Path[strings.LastIndexByte(s.Path, '/')+1:]
				fmt.Fprintf(w, "<tr class=\"stage\"><td>&nbsp;&nbsp;%s</td><td>%.2f ms</td><td><span class=\"bar\" style=\"width:%.0fpx\"></span></td></tr>\n",
					esc(stage), s.DurMS, barPx(s.DurMS, max))
			}
		}
		fmt.Fprint(w, "</table>\n")
	}

	if len(m.Histograms) > 0 {
		fmt.Fprint(w, "<h2>duration distributions</h2>\n<table><tr><th>histogram</th><th>n</th><th>p50</th><th>p90</th><th>p99</th></tr>\n")
		names := make([]string, 0, len(m.Histograms))
		for k := range m.Histograms {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, name := range names {
			h := m.Histograms[name]
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%.2f ms</td><td>%.2f ms</td><td>%.2f ms</td></tr>\n",
				esc(name), h.Count, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
		}
		fmt.Fprint(w, "</table>\n")
	}

	keys, groups := findingsByCheck(m)
	if len(keys) == 0 {
		fmt.Fprint(w, "<h2>findings</h2>\n<p>no findings — corpus clean</p>\n")
	} else {
		fmt.Fprint(w, "<h2>findings by check</h2>\n")
		for _, k := range keys {
			fmt.Fprintf(w, "<h3>%s (%d)</h3>\n<table><tr><th>severity</th><th>item</th><th>subject</th><th>detail</th><th>id</th></tr>\n",
				esc(k), len(groups[k]))
			for _, r := range groups[k] {
				fmt.Fprintf(w, "<tr><td class=\"sev-%s\">%s</td><td>%s</td><td>%s</td><td>%s", esc(r.f.Severity), esc(r.f.Severity),
					esc(r.item), esc(r.f.Subject), esc(r.f.Detail))
				if ev := evidenceLine(r.f); ev != "" {
					fmt.Fprintf(w, "<br><span class=\"ev\">%s</span>", esc(ev))
				}
				fmt.Fprintf(w, "</td><td class=\"id\">%s</td></tr>\n", esc(r.f.ID))
			}
			fmt.Fprint(w, "</table>\n")
		}
	}
	fmt.Fprint(w, "</body></html>\n")
}

// barPx maps a duration to a bar width in pixels (max 300).
func barPx(v, max float64) float64 {
	if max <= 0 {
		return 0
	}
	px := v / max * 300
	if px < 1 && v > 0 {
		px = 1
	}
	return px
}

// runReport is the report subcommand: render a run manifest as a
// human-readable report.
//
//	fcv report [-html] [-top N] [-o out] <manifest.json>
//
// Renders per-cell stage waterfalls, the slowest cells, the cache hit
// ratio, duration-histogram percentiles and the findings grouped by
// check with their evidence — as text (default) or one self-contained
// static HTML page (-html). Legacy v1 manifests render without
// findings and histograms. Exit codes: 0 rendered, 2 operational
// failure; the report never gates (use `fcv diff` for gating).
func runReport(args []string, out *os.File) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	asHTML := fs.Bool("html", false, "render a self-contained static HTML page instead of text")
	topN := fs.Int("top", 10, "how many slowest items to list")
	outPath := fs.String("o", "", "write the report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 1 {
		return fmt.Errorf("report needs exactly one manifest file")
	}
	m, err := obs.ReadManifestFile(rest[0])
	if err != nil {
		return err
	}
	var w io.Writer = out
	var sb *strings.Builder
	if *outPath != "" {
		sb = &strings.Builder{}
		w = sb
	}
	if *asHTML {
		renderHTMLReport(m, *topN, w)
	} else {
		renderTextReport(m, *topN, w)
	}
	if sb != nil {
		return obs.WriteFileAtomic(*outPath, []byte(sb.String()))
	}
	return nil
}
