package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/netlist"
)

const brokenDeck = "../../examples/decks/broken_lint.sp"

// captureLint runs the lint subcommand with stdout redirected to a temp
// file and returns the rendered output plus the error.
func captureLint(t *testing.T, args []string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := runLint(args, f)
	f.Close()
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// TestLintExitCodes pins the subcommand's exit-code contract: nil (exit
// 0) on a clean deck, errLintFindings (exit 1) on unwaived errors, nil
// again when every error-severity finding is waived.
func TestLintExitCodes(t *testing.T) {
	clean := writeDeck(t, invDeck)
	if err := run("lint", []string{clean}); err != nil {
		t.Errorf("clean deck: %v, want nil", err)
	}

	err := run("lint", []string{brokenDeck})
	if !errors.Is(err, errLintFindings) {
		t.Errorf("broken deck: %v, want errLintFindings", err)
	}

	waivers := filepath.Join(t.TempDir(), "waivers")
	if err := os.WriteFile(waivers, []byte(
		"FCV001 broken_cell ghost intentionally floating for the test\n"+
			"FCV003 broken_cell msn intentional rail short for the test\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("lint", []string{"-waivers", waivers, brokenDeck}); err != nil {
		t.Errorf("waived deck: %v, want nil (warnings never drive the exit code)", err)
	}
}

// TestLintSeededFindings asserts the broken deck reports the two seeded
// error rules at the exact deck lines the fixture documents.
func TestLintSeededFindings(t *testing.T) {
	out, err := captureLint(t, []string{brokenDeck})
	if !errors.Is(err, errLintFindings) {
		t.Fatalf("err = %v, want errLintFindings", err)
	}
	for _, want := range []string{
		"broken_lint.sp:5: error FCV001 [broken_cell] ghost",
		"broken_lint.sp:8: error FCV003 [broken_cell] msn",
		"broken_lint.sp:12: warn FCV005 [broken_cell] dyn",
		"broken_lint.sp:15: warn FCV004 [broken_cell] stub",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLintSARIFOutput checks -format sarif emits a parseable SARIF 2.1.0
// log with the seeded findings, and that waived findings carry
// suppressions instead of vanishing.
func TestLintSARIFOutput(t *testing.T) {
	waivers := filepath.Join(t.TempDir(), "waivers")
	if err := os.WriteFile(waivers, []byte("FCV001 * * demo waiver\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, runErr := captureLint(t, []string{"-format", "sarif", "-waivers", waivers, brokenDeck})
	if !errors.Is(runErr, errLintFindings) {
		t.Fatalf("err = %v, want errLintFindings (FCV003 is not waived)", runErr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID       string `json:"ruleId"`
				Suppressions []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version = %q runs = %d", log.Version, len(log.Runs))
	}
	suppressed := 0
	rules := map[string]bool{}
	for _, r := range log.Runs[0].Results {
		rules[r.RuleID] = true
		for _, s := range r.Suppressions {
			if s.Kind == "external" {
				suppressed++
			}
		}
	}
	if !rules["FCV001"] || !rules["FCV003"] {
		t.Errorf("rules seen = %v, want FCV001 and FCV003", rules)
	}
	if suppressed != 1 {
		t.Errorf("suppressed results = %d, want 1 (the waived FCV001)", suppressed)
	}
}

// TestLintFlagHandling covers the remaining subcommand surface: JSON
// format, unknown format, unknown cell, missing deck.
func TestLintFlagHandling(t *testing.T) {
	clean := writeDeck(t, invDeck)
	out, err := captureLint(t, []string{"-format", "json", clean})
	if err != nil {
		t.Fatalf("json format: %v", err)
	}
	var rep struct {
		Errors int `json:"errors"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if _, err := captureLint(t, []string{"-format", "yaml", clean}); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := captureLint(t, []string{clean, "nosuch"}); err == nil {
		t.Error("unknown cell accepted")
	}
	if _, err := captureLint(t, nil); err == nil {
		t.Error("missing deck accepted")
	}
}

// seededDecks are the known-defect fixtures (beyond the broken_* naming
// convention) and the single rule each must be caught by.
var seededDecks = map[string]string{
	"c2mos_pipe.sp": "FCV011",
	"nora_stage.sp": "FCV012",
	"sneak_path.sp": "FCV014",
}

// TestLintDeckCorpus runs every shipped example deck through the linter:
// decks named broken_* and the seeded-defect fixtures must fail with
// findings, everything else ships lint-clean.
func TestLintDeckCorpus(t *testing.T) {
	decks, err := filepath.Glob("../../examples/decks/*.sp")
	if err != nil || len(decks) == 0 {
		t.Fatalf("no example decks found: %v", err)
	}
	for _, deck := range decks {
		err := run("lint", []string{deck})
		_, seeded := seededDecks[filepath.Base(deck)]
		if seeded || strings.HasPrefix(filepath.Base(deck), "broken") {
			if !errors.Is(err, errLintFindings) {
				t.Errorf("%s: %v, want errLintFindings", deck, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v, want lint-clean", deck, err)
		}
	}
}

// TestLintSeededPhaseFixtures pins the known-answer labels of the
// FCV011/FCV012/FCV014 fixtures: each seeded deck reports exactly its
// intended rule (and only error-severity findings of that rule), and
// the clean counterpart reports nothing at all.
func TestLintSeededPhaseFixtures(t *testing.T) {
	for base, wantRule := range seededDecks {
		deck := "../../examples/decks/" + base
		out, err := captureLint(t, []string{deck})
		if !errors.Is(err, errLintFindings) {
			t.Errorf("%s: err = %v, want errLintFindings", base, err)
		}
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			if strings.HasPrefix(line, "lint:") {
				continue
			}
			if !strings.Contains(line, wantRule) {
				t.Errorf("%s: finding from an unintended rule (want only %s): %s", base, wantRule, line)
			}
		}

		clean := strings.TrimSuffix(deck, ".sp") + "_clean.sp"
		cout, cerr := captureLint(t, []string{clean})
		if cerr != nil {
			t.Errorf("%s clean counterpart: %v, want nil", base, cerr)
		}
		for _, line := range strings.Split(strings.TrimSpace(cout), "\n") {
			if strings.Contains(line, "FCV") && !strings.HasPrefix(line, "lint:") {
				t.Errorf("%s clean counterpart: false positive: %s", base, line)
			}
		}
	}
}

// TestLintLibraryFromDeck pins the library driver's root inference on a
// hierarchical deck: the top-level soup is linted as a cell and unused
// cells get FCV008 only when a root is named.
func TestLintLibraryFromDeck(t *testing.T) {
	deck := writeDeck(t, invDeck+
		".subckt orphan a y\nmn y a vss vss nmos w=2 l=0.75\nmp y a vdd vdd pmos w=4 l=0.75\n.ends\n")
	lib, top, err := netlist.ParseFile(deck)
	if err != nil {
		t.Fatal(err)
	}
	lib.Add(top)
	rep, err := lint.LintLibrary(lib, lint.LibraryOptions{Roots: []string{"top"}})
	if err != nil {
		t.Fatal(err)
	}
	var unused []string
	for _, d := range rep.Diags {
		if d.Rule == lint.UnusedCellRuleID {
			unused = append(unused, d.Subject)
		}
	}
	if len(unused) != 1 || unused[0] != "orphan" {
		t.Errorf("FCV008 subjects = %v, want [orphan]", unused)
	}
}
