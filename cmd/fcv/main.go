// Command fcv is the full-custom verification driver: the command-line
// face of the CBV methodology. It reads a SPICE-subset transistor deck,
// flattens it, and runs the requested tool:
//
//	fcv verify  <deck.sp>... [top] # recognition + §4.2 battery + timing (CBV)
//	fcv serve                     # long-lived HTTP verification daemon (POST /verify)
//	fcv top                       # live terminal dashboard over a running daemon
//	fcv lint    <deck.sp> [top]   # static netlist analysis (FCV001…) over every cell
//	fcv recog   <deck.sp> [top]   # recognition only
//	fcv checks  <deck.sp> [top]   # §4.2 electrical battery
//	fcv timing  <deck.sp> [top]   # critical paths and races
//	fcv layout  <deck.sp> [top]   # macrocell place/estimate
//	fcv cbc     <deck.sp> [top]   # the correct-by-construction gatekeeper
//	fcv sim     <f.fcl> N [in=v]  # run an FCL RTL model for N cycles
//	fcv power                     # Table 1 power walk + generations table
//	fcv bench                     # measure throughput metrics -> BENCH_fleet.json
//	fcv manifest-check <m.json>   # validate a run manifest against its schema
//	fcv trend -baseline b.json m.json  # fail on throughput regression past tolerance
//	fcv diff <base.json> <cur.json>    # new/fixed/changed findings between two manifests
//	fcv report [-html] <m.json>        # render a manifest as a human-readable run report
//	fcv cache stats|gc <dir>           # inspect or shrink a persistent result cache
//
// verify is the fleet driver: it accepts several decks (and, with
// -cells, every cell of each deck as its own corpus member), verifies
// them on -j parallel workers with a structural-fingerprint result
// cache, and exits 0 when everything passes or needs inspection only,
// 1 when any design is in violation or errors, 2 on operational
// failure:
//
//	fcv verify [-j N] [-cells] [-hier] [-hier-inline N] [-cache] [-cache-dir d] [-lint] [-quiet] [-manifest m.json] [-events e.jsonl] [-trace] [-pprof-labels] <deck.sp>... [top]
//
// -hier switches a single-deck run to hierarchical incremental
// verification (fleet.VerifyHier): each subcell above the -hier-inline
// device cutoff is verified in isolation, keyed on its fingerprint DAG
// hash, and parent verdicts are composed from child results plus
// boundary checks — so with -cache-dir, re-verifying after a one-leaf
// edit recomputes only the edited cell and its path to the root.
//
// -cache-dir (default $FCV_CACHE_DIR) layers a persistent result cache
// under the in-memory one: results keyed by (structural fingerprint,
// config key, cache format version) survive across runs, so re-verifying
// an unchanged corpus replays from disk instead of recomputing;
// -manifest writes the machine-readable run manifest (schema
// fcv-run-manifest/v2: config key, fingerprints, per-item provenanced
// findings with stable IDs, per-stage durations, counters, duration
// histograms, verdict tallies); -events streams live JSONL events
// (item/stage/cache/finding) whose sequence is deterministic at any -j;
// -lint runs the static gate before the battery so lint findings reach
// the manifest; -trace prints the span tree and counters;
// -pprof-labels tags fleet worker goroutines with fcv_cell/fcv_stage
// labels so CPU profiles attribute samples to cells and stages.
//
// diff compares two run manifests by stable finding ID and exits 0 when
// no new findings appeared, 1 when any did (fixed findings never fail
// the gate), 2 on operational failure — the run-to-run regression gate.
//
// Flags:
//
//	-process cmos075|cmos050|cmos035lp   (default cmos075)
//	-period  <ps>                        clock period (default: process nominal)
//
// lint takes its own flags after the subcommand:
//
//	fcv lint [-format text|json|sarif] [-waivers file] [-fanout N] <deck.sp> [top]
//
// and exits 0 on a clean (or fully waived) deck, 1 when unwaived
// error-severity findings remain — so CI can gate on it directly.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/checks"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/layout"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/process"
	"repro/internal/recognize"
	"repro/internal/rtl"
	"repro/internal/timing"
)

// errLintFindings marks the "deck has unwaived error findings" outcome,
// so main can give it the conventional lint exit code (1) while other
// failures exit 2. errVerifyFindings is the same contract for verify
// (any corpus member in violation or erroring), errManifestInvalid for
// manifest-check, and errTrendRegression for trend — all exit 1 so CI
// can gate on them directly.
var (
	errLintFindings    = errors.New("lint findings")
	errVerifyFindings  = errors.New("verification findings")
	errManifestInvalid = errors.New("manifest invalid")
	errTrendRegression = errors.New("throughput regression")
	errDiffNewFindings = errors.New("new findings")
)

// isFindings classifies the exit-1 family: the tool ran fine and the
// inputs were judged bad, as opposed to operational failure (exit 2).
func isFindings(err error) bool {
	return errors.Is(err, errLintFindings) || errors.Is(err, errVerifyFindings) ||
		errors.Is(err, errManifestInvalid) || errors.Is(err, errTrendRegression) ||
		errors.Is(err, errDiffNewFindings)
}

var (
	procName = flag.String("process", "cmos075", "process model: cmos075, cmos050, cmos035lp")
	periodPS = flag.Float64("period", 0, "clock period in ps (0 = process nominal)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fcv [flags] <verify|serve|top|lint|recog|checks|timing|layout|cbc|sim|power|bench|manifest-check|trend|diff|report|cache> [args]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(args[0], args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "fcv: %v\n", err)
		if isFindings(err) {
			os.Exit(1)
		}
		os.Exit(2)
	}
}

// run dispatches a subcommand.
func run(cmd string, args []string) error {
	proc, err := process.ByName(*procName)
	if err != nil {
		return err
	}
	period := *periodPS
	if period <= 0 {
		period = 1e6 / proc.ClockFreqMHz
	}
	switch cmd {
	case "power":
		steps, err := power.Table1Walk(power.ALPHA21064(), power.StrongARM110())
		if err != nil {
			return err
		}
		fmt.Print(power.FormatWalk(steps))
		fmt.Println("\nGenerations (§3 scaling story):")
		fmt.Println("  chip          MHz    power(W)  perf  perf/W")
		for _, r := range power.GenerationsTable() {
			fmt.Printf("  %-12s  %4.0f  %8.2f  %4.1f  %6.2f\n",
				r.Name, r.FreqMHz, r.PowerW, r.PerfRel, r.PerfPerW)
		}
		return nil

	case "sim":
		if len(args) < 2 {
			return fmt.Errorf("sim needs <design.fcl> <cycles> [input=value ...]")
		}
		cycles, err := strconv.Atoi(args[1])
		if err != nil || cycles < 0 {
			return fmt.Errorf("bad cycle count %q", args[1])
		}
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		prog, err := rtl.Parse(f)
		if err != nil {
			return err
		}
		sim, err := rtl.NewSim(prog)
		if err != nil {
			return err
		}
		for _, kv := range args[2:] {
			name, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("input drive %q must be name=value", kv)
			}
			v, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return fmt.Errorf("input drive %q: %v", kv, err)
			}
			if err := sim.Set(name, v); err != nil {
				return err
			}
		}
		fmt.Println(sim.Design().Stats())
		sim.Run(cycles)
		for _, out := range prog.Modules[prog.Top].Outputs() {
			fmt.Printf("  %s = %d\n", out.Name, sim.Get(out.Name))
		}
		return nil

	case "lint":
		return runLint(args, os.Stdout)

	case "verify":
		return runVerify(args, proc, period, os.Stdout)

	case "serve":
		return runServe(args, proc, period, os.Stdout)

	case "top":
		return runTop(args, os.Stdout)

	case "bench":
		return runBench(args, os.Stdout)

	case "manifest-check":
		return runManifestCheck(args, os.Stdout)

	case "trend":
		return runTrend(args, os.Stdout)

	case "diff":
		return runDiff(args, os.Stdout)

	case "report":
		return runReport(args, os.Stdout)

	case "cache":
		return runCache(args, os.Stdout)
	}

	// Netlist-based subcommands.
	if len(args) < 1 {
		return fmt.Errorf("%s needs a SPICE deck", cmd)
	}
	flat, err := loadFlat(args)
	if err != nil {
		return err
	}
	switch cmd {
	case "recog":
		rec, err := recognize.Analyze(flat)
		if err != nil {
			return err
		}
		fmt.Println(rec.Summary())
		for _, g := range rec.Groups {
			fmt.Printf("  group %d: %s, %d devices", g.Index, g.Family, len(g.Devices))
			for _, f := range g.Funcs {
				if f.Function != nil {
					fmt.Printf("  %s=%s", flat.NodeName(f.Node), f.Function)
				}
			}
			fmt.Println()
		}
		return nil

	case "checks":
		rec, err := recognize.Analyze(flat)
		if err != nil {
			return err
		}
		rep, err := checks.RunAll(rec, checks.Options{Proc: proc, PeriodPS: period})
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		for _, f := range rep.Violations() {
			fmt.Printf("  VIOLATION %s %s: %s\n", f.Check, f.Subject, f.Detail)
		}
		return nil

	case "timing":
		rec, err := recognize.Analyze(flat)
		if err != nil {
			return err
		}
		rep, err := timing.Analyze(rec, timing.Options{Proc: proc, Clock: timing.TwoPhase(period)})
		if err != nil {
			return err
		}
		fmt.Printf("endpoints=%d races=%d min-period=%.0f ps\n",
			len(rep.Paths), len(rep.Races), rep.MinPeriodPS)
		if cp := rep.CriticalPath(); cp != nil {
			fmt.Printf("critical: %v (slack %.0f ps)\n", rep.PathNodeNames(cp), cp.SetupSlack)
		}
		for _, r := range rep.Races {
			fmt.Printf("RACE at %s: hold slack %.0f ps\n", flat.NodeName(r.Endpoint), r.HoldSlack)
		}
		return nil

	case "layout":
		m, err := layout.Place(flat, proc)
		if err != nil {
			return err
		}
		fmt.Println(m.Summary())
		return nil

	case "cbc":
		rep, err := core.CheckCBC(flat, proc)
		if err != nil {
			return err
		}
		fmt.Printf("CBC: accepted %d groups, rejected %d\n", rep.Accepted, len(rep.Rejections))
		for _, r := range rep.Rejections {
			fmt.Printf("  group %d (%s): %s\n", r.Group, r.Family, r.Reason)
		}
		return nil

	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// runVerify is the fleet-backed verify subcommand:
//
//	fcv verify [-j N] [-cells] [-cache] [-quiet] <deck.sp>... [top]
//
// With one deck it verifies the inferred (or named) top, exactly the old
// single-design behaviour. With -cells it treats every cell of every
// deck as a corpus member; with several decks each becomes one item.
// Exit codes: 0 all designs pass or need inspection only, 1 any design
// in violation or erroring, 2 operational failure (bad flags, unreadable
// deck).
func runVerify(args []string, proc *process.Process, period float64, out *os.File) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	workers := fs.Int("j", 0, "parallel verification workers (0 = GOMAXPROCS)")
	cells := fs.Bool("cells", false, "verify every cell of each deck, not just the top")
	useCache := fs.Bool("cache", true, "memoize results under structural fingerprints")
	cacheDir := fs.String("cache-dir", os.Getenv("FCV_CACHE_DIR"), "persistent result cache directory (default $FCV_CACHE_DIR; empty = off)")
	hierMode := fs.Bool("hier", false, "hierarchical incremental verification: key each subcell on its fingerprint DAG and compose parent verdicts (single deck)")
	hierInline := fs.Int("hier-inline", 0, "fold cells flattening to at most this many devices into their parent's scope (0 = default 16, negative keeps every cell)")
	quiet := fs.Bool("quiet", false, "suppress per-design timing breakdown")
	manifestPath := fs.String("manifest", "", "write a run-manifest JSON (schema "+obs.SchemaID+") to this path")
	eventsPath := fs.String("events", "", "stream live JSONL events (stage/finding/cache) to this path")
	lintGate := fs.Bool("lint", false, "run the static lint gate before the electrical battery")
	trace := fs.Bool("trace", false, "print the span tree and counters after the report")
	pprofLabels := fs.Bool("pprof-labels", false, "tag worker goroutines with fcv_cell/fcv_stage pprof labels")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) < 1 {
		return fmt.Errorf("verify needs a SPICE deck")
	}
	// A trailing argument that is not a readable file names the top cell
	// (single-deck back-compat: `fcv verify deck.sp mytop`).
	decks, top := rest, ""
	if len(rest) >= 2 {
		if _, err := os.Stat(rest[len(rest)-1]); err != nil {
			top = rest[len(rest)-1]
			decks = rest[:len(rest)-1]
		}
	}
	if top != "" && (len(decks) > 1 || *cells) {
		return fmt.Errorf("verify: a top cell name applies to a single deck without -cells")
	}
	if *hierMode && (len(decks) > 1 || *cells) {
		return fmt.Errorf("verify: -hier applies to a single deck without -cells")
	}
	var items []fleet.Item
	for _, deck := range decks {
		if *hierMode {
			break // the hierarchy is resolved below, unflattened
		}
		if *cells {
			lib, soup, err := netlist.ParseFile(deck)
			if err != nil {
				return err
			}
			if len(soup.Devices) > 0 || len(soup.Instances) > 0 || len(soup.Resistors) > 0 {
				lib.Add(soup)
			}
			cellItems, errs := fleet.CorpusFromLibrary(lib)
			for _, e := range errs {
				return e
			}
			for _, it := range cellItems {
				items = append(items, fleet.Item{Name: deck + ":" + it.Name, Circuit: it.Circuit})
			}
			continue
		}
		largs := []string{deck}
		if top != "" {
			largs = append(largs, top)
		}
		flat, err := loadFlat(largs)
		if err != nil {
			return err
		}
		name := flat.Name
		if len(decks) > 1 {
			name = deck + ":" + name
		}
		items = append(items, fleet.Item{Name: name, Circuit: flat})
	}
	opt := fleet.Options{
		Core:        core.Options{Proc: proc, Clock: timing.TwoPhase(period), Lint: *lintGate},
		Workers:     *workers,
		PprofLabels: *pprofLabels,
	}
	if *useCache {
		opt.Cache = fleet.NewCache()
	}
	if *cacheDir != "" {
		d, err := fleet.OpenDiskCache(*cacheDir)
		if err != nil {
			return err
		}
		opt.DiskCache = d
	}
	var col *obs.Collector
	if *manifestPath != "" || *trace {
		col = obs.New()
		opt.Obs = col
	}
	var eventsFile *os.File
	if *eventsPath != "" {
		ef, err := os.Create(*eventsPath)
		if err != nil {
			return err
		}
		eventsFile = ef
		opt.Events = obs.NewEventSink(ef)
	}
	var rep *fleet.Report
	if *hierMode {
		f, err := os.Open(decks[0])
		if err != nil {
			return err
		}
		lib, hierTop, err := fleet.HierFromDeck(f, decks[0], top)
		f.Close()
		if err != nil {
			return err
		}
		opt.HierInline = *hierInline
		rep, err = fleet.VerifyHier(lib, hierTop, opt)
		if err != nil {
			return err
		}
	} else {
		rep = fleet.Verify(items, opt)
	}
	if eventsFile != nil {
		// The fleet emitted run-end, so the stream is complete; close the
		// sink and surface any latched write error before the exit-code
		// decision.
		if err := opt.Events.Close(); err != nil {
			eventsFile.Close()
			return fmt.Errorf("events: %w", err)
		}
		if err := eventsFile.Close(); err != nil {
			return err
		}
	}
	fmt.Fprint(out, rep.Text())
	if !*quiet {
		fmt.Fprint(out, rep.TimingText())
	}
	if *trace {
		fmt.Fprint(out, col.Tree())
		fmt.Fprint(out, col.CountersText())
	}
	if *manifestPath != "" {
		if err := buildManifest("fcv verify", rep, col).WriteFile(*manifestPath); err != nil {
			return err
		}
	}
	if rep.HasViolations() {
		_, _, violation, failed := rep.Counts()
		return fmt.Errorf("%w: %d violation(s), %d error(s)", errVerifyFindings, violation, failed)
	}
	return nil
}

// runLint is the lint subcommand: parse the deck, lint every cell in
// parallel, render in the requested format, and signal unwaived
// error-severity findings through errLintFindings (exit code 1).
func runLint(args []string, out *os.File) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	format := fs.String("format", "text", "output format: text, json, sarif")
	waiverPath := fs.String("waivers", "", "waiver file (RULE CELL SUBJECT note… per line)")
	fanout := fs.Int("fanout", 0, "FCV010 gate-fanout ceiling (0 = default 64)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) < 1 {
		return fmt.Errorf("lint needs a SPICE deck")
	}
	lib, top, err := netlist.ParseFile(rest[0])
	if err != nil {
		return err
	}
	opt := lint.LibraryOptions{}
	opt.FanoutLimit = *fanout
	if *waiverPath != "" {
		w, err := lint.LoadWaivers(*waiverPath)
		if err != nil {
			return err
		}
		opt.Waivers = w
	}
	// The top-level element soup becomes a cell too, and the design
	// roots (for FCV008 reachability) follow loadFlat's inference: the
	// named top, else the soup, else the last-defined cell.
	switch {
	case len(rest) >= 2:
		if lib.Cell(rest[1]) == nil {
			return fmt.Errorf("lint: unknown cell %q", rest[1])
		}
		opt.Roots = []string{rest[1]}
	case len(top.Devices) > 0 || len(top.Instances) > 0 || len(top.Resistors) > 0:
		lib.Add(top)
		opt.Roots = []string{top.Name}
	default:
		if cells := lib.Cells(); len(cells) > 0 {
			opt.Roots = []string{cells[len(cells)-1]}
		}
	}
	rep, err := lint.LintLibrary(lib, opt)
	if err != nil {
		return err
	}
	switch *format {
	case "text":
		fmt.Fprint(out, rep.Text())
	case "json":
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(b))
	case "sarif":
		b, err := rep.SARIF()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(b))
	default:
		return fmt.Errorf("lint: unknown format %q (want text, json or sarif)", *format)
	}
	if rep.HasErrors() {
		errs, _, _ := rep.Counts()
		return fmt.Errorf("%w: %d unwaived error(s)", errLintFindings, errs)
	}
	return nil
}

// loadFlat parses a deck and flattens the requested (or inferred) top.
func loadFlat(args []string) (*netlist.Circuit, error) {
	lib, top, err := netlist.ParseFile(args[0])
	if err != nil {
		return nil, err
	}
	if len(args) >= 2 {
		return lib.Flatten(args[1])
	}
	if len(top.Devices) == 0 && len(top.Instances) == 0 {
		// Deck is all subcircuits: flatten the last-named cell.
		cells := lib.Cells()
		if len(cells) == 0 {
			return nil, fmt.Errorf("empty deck")
		}
		return lib.Flatten(cells[len(cells)-1])
	}
	// Flatten the top-level element soup through a temporary library.
	lib.Add(top)
	return lib.Flatten(top.Name)
}
