package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// trendMetrics names the BenchMetrics JSON keys the trend gate watches.
// These are higher-is-better throughputs; only drops beyond the
// tolerance fail the gate (improvements always pass — they become the
// next baseline). Metrics are looked up by key in the raw documents
// rather than through struct fields, so a baseline written by an older
// (or newer) fcv whose metric set drifted is skipped with a warning
// instead of read as a zero and misjudged.
var trendMetrics = []string{
	"rtl_cycles_per_sec",
	"fleet_designs_per_sec_j1",
	"fleet_designs_per_sec_jn",
	"vectors_per_sec",
	"cycles_per_day",
	"lane_parallel_speedup",
	"lane_block_speedup",
	"hier_cold_designs_per_sec",
	"hier_edit_one_leaf_reverify_per_sec",
	"hier_incremental_speedup",
	"serve_requests_per_sec",
}

// trendLowerBetter are the watched keys where lower is better — the
// serve latency quantiles. A regression is the current value rising
// more than the tolerance above the baseline. They ride the same
// key-drift skip, so plain `fcv bench` artifacts (no -serve, keys
// absent via omitempty) pass through the gate untouched.
var trendLowerBetter = []string{
	"serve_p50_ms",
	"serve_p99_ms",
}

// runTrend is the bench-trend gate: compare the current BENCH_fleet
// metrics against a baseline and fail (exit 1) when any throughput
// metric regressed past the tolerance.
//
//	fcv trend [-baseline BENCH_baseline.json] [-tolerance 30] <BENCH_fleet.json>
//
// A missing baseline file is reported but passes (first run of a new
// pipeline has nothing to compare against); a present-but-unreadable
// baseline is an operational failure (exit 2).
func runTrend(args []string, out *os.File) error {
	fs := flag.NewFlagSet("trend", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline metrics JSON")
	tolPct := fs.Float64("tolerance", 30, "allowed throughput regression in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 1 {
		return fmt.Errorf("trend needs exactly one current metrics file")
	}
	cur, err := readRawMetrics(rest[0])
	if err != nil {
		return err
	}
	if _, err := os.Stat(*baselinePath); os.IsNotExist(err) {
		fmt.Fprintf(out, "trend: no baseline at %s — nothing to compare, passing\n", *baselinePath)
		return nil
	}
	base, err := readRawMetrics(*baselinePath)
	if err != nil {
		return err
	}
	tol := *tolPct / 100
	var regressions int
	fmt.Fprintf(out, "trend: %s vs baseline %s (tolerance ±%.0f%%)\n", rest[0], *baselinePath, *tolPct)
	check := func(name string, lowerBetter bool) {
		b, bok := base[name]
		c, cok := cur[name]
		switch {
		case !bok && !cok:
			fmt.Fprintf(out, "  %-26s absent from both files, skipped (metric-key drift)\n", name)
			return
		case !bok:
			fmt.Fprintf(out, "  %-26s missing from baseline, skipped (metric-key drift)\n", name)
			return
		case !cok:
			fmt.Fprintf(out, "  %-26s missing from current metrics, skipped (metric-key drift)\n", name)
			return
		}
		if b <= 0 {
			fmt.Fprintf(out, "  %-26s baseline empty, skipped\n", name)
			return
		}
		delta := (c - b) / b * 100
		status := "ok"
		if lowerBetter {
			if c > b*(1+tol) {
				status = "REGRESSION"
				regressions++
			}
		} else if c < b*(1-tol) {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "  %-26s %12.1f -> %12.1f  %+7.1f%%  %s\n", name, b, c, delta, status)
	}
	for _, name := range trendMetrics {
		check(name, false)
	}
	for _, name := range trendLowerBetter {
		check(name, true)
	}
	if regressions > 0 {
		return fmt.Errorf("%w: %d metric(s) regressed more than %.0f%% past baseline", errTrendRegression, regressions, *tolPct)
	}
	return nil
}

// readRawMetrics loads a BENCH_fleet.json-shaped file as a raw
// key→number map, keeping only numeric fields. The raw form lets the
// gate distinguish "metric absent" (key drift between tool versions —
// skip with a warning) from "metric measured as zero".
func readRawMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			m[k] = f
		}
	}
	return m, nil
}
