package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// trendMetrics names the BenchMetrics JSON keys the trend gate watches.
// All watched metrics are higher-is-better throughputs; only drops
// beyond the tolerance fail the gate (improvements always pass — they
// become the next baseline). Metrics are looked up by key in the raw
// documents rather than through struct fields, so a baseline written by
// an older (or newer) fcv whose metric set drifted is skipped with a
// warning instead of read as a zero and misjudged.
var trendMetrics = []string{
	"rtl_cycles_per_sec",
	"fleet_designs_per_sec_j1",
	"fleet_designs_per_sec_jn",
	"vectors_per_sec",
	"cycles_per_day",
	"lane_parallel_speedup",
}

// runTrend is the bench-trend gate: compare the current BENCH_fleet
// metrics against a baseline and fail (exit 1) when any throughput
// metric regressed past the tolerance.
//
//	fcv trend [-baseline BENCH_baseline.json] [-tolerance 30] <BENCH_fleet.json>
//
// A missing baseline file is reported but passes (first run of a new
// pipeline has nothing to compare against); a present-but-unreadable
// baseline is an operational failure (exit 2).
func runTrend(args []string, out *os.File) error {
	fs := flag.NewFlagSet("trend", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline metrics JSON")
	tolPct := fs.Float64("tolerance", 30, "allowed throughput regression in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 1 {
		return fmt.Errorf("trend needs exactly one current metrics file")
	}
	cur, err := readRawMetrics(rest[0])
	if err != nil {
		return err
	}
	if _, err := os.Stat(*baselinePath); os.IsNotExist(err) {
		fmt.Fprintf(out, "trend: no baseline at %s — nothing to compare, passing\n", *baselinePath)
		return nil
	}
	base, err := readRawMetrics(*baselinePath)
	if err != nil {
		return err
	}
	tol := *tolPct / 100
	var regressions int
	fmt.Fprintf(out, "trend: %s vs baseline %s (tolerance ±%.0f%%)\n", rest[0], *baselinePath, *tolPct)
	for _, name := range trendMetrics {
		b, bok := base[name]
		c, cok := cur[name]
		switch {
		case !bok && !cok:
			fmt.Fprintf(out, "  %-26s absent from both files, skipped (metric-key drift)\n", name)
			continue
		case !bok:
			fmt.Fprintf(out, "  %-26s missing from baseline, skipped (metric-key drift)\n", name)
			continue
		case !cok:
			fmt.Fprintf(out, "  %-26s missing from current metrics, skipped (metric-key drift)\n", name)
			continue
		}
		if b <= 0 {
			fmt.Fprintf(out, "  %-26s baseline empty, skipped\n", name)
			continue
		}
		delta := (c - b) / b * 100
		status := "ok"
		if c < b*(1-tol) {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "  %-26s %12.1f -> %12.1f  %+7.1f%%  %s\n", name, b, c, delta, status)
	}
	if regressions > 0 {
		return fmt.Errorf("%w: %d metric(s) dropped more than %.0f%% below baseline", errTrendRegression, regressions, *tolPct)
	}
	return nil
}

// readRawMetrics loads a BENCH_fleet.json-shaped file as a raw
// key→number map, keeping only numeric fields. The raw form lets the
// gate distinguish "metric absent" (key drift between tool versions —
// skip with a warning) from "metric measured as zero".
func readRawMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			m[k] = f
		}
	}
	return m, nil
}
