package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// trendMetric names one BenchMetrics field the trend gate watches.
// All watched metrics are higher-is-better throughputs; only drops
// beyond the tolerance fail the gate (improvements always pass — they
// become the next baseline).
type trendMetric struct {
	name string
	get  func(*BenchMetrics) float64
}

var trendMetrics = []trendMetric{
	{"rtl_cycles_per_sec", func(m *BenchMetrics) float64 { return m.RTLCyclesPerSec }},
	{"fleet_designs_per_sec_j1", func(m *BenchMetrics) float64 { return m.FleetDesignsPerSecJ1 }},
	{"fleet_designs_per_sec_jn", func(m *BenchMetrics) float64 { return m.FleetDesignsPerSecJN }},
}

// runTrend is the bench-trend gate: compare the current BENCH_fleet
// metrics against a baseline and fail (exit 1) when any throughput
// metric regressed past the tolerance.
//
//	fcv trend [-baseline BENCH_baseline.json] [-tolerance 30] <BENCH_fleet.json>
//
// A missing baseline file is reported but passes (first run of a new
// pipeline has nothing to compare against); a present-but-unreadable
// baseline is an operational failure (exit 2).
func runTrend(args []string, out *os.File) error {
	fs := flag.NewFlagSet("trend", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline metrics JSON")
	tolPct := fs.Float64("tolerance", 30, "allowed throughput regression in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 1 {
		return fmt.Errorf("trend needs exactly one current metrics file")
	}
	cur, err := readBenchMetrics(rest[0])
	if err != nil {
		return err
	}
	if _, err := os.Stat(*baselinePath); os.IsNotExist(err) {
		fmt.Fprintf(out, "trend: no baseline at %s — nothing to compare, passing\n", *baselinePath)
		return nil
	}
	base, err := readBenchMetrics(*baselinePath)
	if err != nil {
		return err
	}
	tol := *tolPct / 100
	var regressions int
	fmt.Fprintf(out, "trend: %s vs baseline %s (tolerance ±%.0f%%)\n", rest[0], *baselinePath, *tolPct)
	for _, tm := range trendMetrics {
		b, c := tm.get(base), tm.get(cur)
		if b <= 0 {
			fmt.Fprintf(out, "  %-26s baseline empty, skipped\n", tm.name)
			continue
		}
		delta := (c - b) / b * 100
		status := "ok"
		if c < b*(1-tol) {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "  %-26s %12.1f -> %12.1f  %+7.1f%%  %s\n", tm.name, b, c, delta, status)
	}
	if regressions > 0 {
		return fmt.Errorf("%w: %d metric(s) dropped more than %.0f%% below baseline", errTrendRegression, regressions, *tolPct)
	}
	return nil
}

// readBenchMetrics loads a BENCH_fleet.json-shaped file.
func readBenchMetrics(path string) (*BenchMetrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m BenchMetrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}
