package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/process"
	"repro/internal/serve"
	"repro/internal/timing"
)

const topTestDeck = `
.subckt inv a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends
x1 in mid inv
x2 mid out inv
`

// TestTopOnceRendersDashboard boots an in-process daemon, serves one
// request, and checks `fcv top -once` renders every dashboard section
// from the live /stats + /metrics pair.
func TestTopOnceRendersDashboard(t *testing.T) {
	cfg := serve.Config{
		Core:   core.Options{Proc: process.CMOS075(), Clock: timing.TwoPhase(3000)},
		SlowMS: 0.0001,
	}
	srv := serve.New(cfg)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := hs.Client().Post(hs.URL+"/verify", "text/plain", strings.NewReader(topTestDeck))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var out strings.Builder
	if err := runTop([]string{"-once", "-addr", hs.URL}, &out); err != nil {
		t.Fatalf("fcv top -once: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"fcv top — " + hs.URL,
		"1 served",
		"req/s",
		"p50", "p99",
		"pool", "queue",
		"verdicts   pass",
		"cache      hits 0  misses 1",
		"parse      hits 0  misses 1",
		"subcell    hits 0  misses 0  (- hit)   composed 0",
		"goroutines",
		"heap",
		"slow traces 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dashboard missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "\x1b[") {
		t.Error("-once frame contains ANSI clear sequences")
	}
}

// TestTopUnreachableDaemon a dead address is an error, not a hang or an
// empty dashboard.
func TestTopUnreachableDaemon(t *testing.T) {
	var out strings.Builder
	err := runTop([]string{"-once", "-addr", "http://127.0.0.1:1"}, &out)
	if err == nil {
		t.Fatal("top against a dead daemon returned nil")
	}
}
